// Package isolation defines the sequential request isolation strategies the
// paper evaluates, behind one interface:
//
//   - Base:  no isolation — the insecure container-reuse baseline (BASE).
//   - GH:    Groundhog snapshot/restore (the paper's contribution).
//   - GHNop: Groundhog attached but never restoring — the trusted-caller
//     optimization and the configuration that isolates tracking cost (GH̶NOP).
//   - Fork:  serve each request in a freshly forked child (§5.2.3);
//     single-threaded runtimes only.
//   - Faasm: WebAssembly-style linear-memory remapping (§5.3.3).
//
// A Strategy brackets request execution: BeginRequest returns the process
// the request must run in (and may add critical-path cost, e.g. fork);
// EndRequest runs after the response has been returned and reports the
// off-critical-path cleanup duration (e.g. Groundhog's restore).
package isolation

import (
	"fmt"
	"time"

	"groundhog/internal/core"
	"groundhog/internal/kernel"
	"groundhog/internal/sim"
)

// Mode names a strategy, using the paper's configuration labels.
type Mode string

// The evaluated configurations.
const (
	ModeBase  Mode = "base"
	ModeGH    Mode = "gh"
	ModeGHNop Mode = "gh-nop"
	ModeFork  Mode = "fork"
	ModeFaasm Mode = "faasm"
)

// Modes lists all configurations in the paper's presentation order.
var Modes = []Mode{ModeBase, ModeGHNop, ModeGH, ModeFork, ModeFaasm}

// CleanupResult reports the off-critical-path work done after a request.
type CleanupResult struct {
	// Duration is the virtual time the container is unavailable after
	// returning a response (restore / child teardown / reset).
	Duration sim.Duration
	// Restore carries Groundhog's per-phase breakdown when applicable.
	Restore core.RestoreStats
	// Restored reports whether state was actually rolled back.
	Restored bool
}

// Strategy brackets request execution in a container.
type Strategy interface {
	Mode() Mode
	// Init runs once after the runtime is warmed (dummy request executed).
	// It returns the setup duration (snapshotting for GH, nothing for
	// BASE), which extends container initialization, off any request's
	// critical path.
	Init() (sim.Duration, error)
	// BeginRequest returns the process to run the request in, charging any
	// critical-path setup (fork) to meter.
	BeginRequest(meter *sim.Meter) (*kernel.Process, error)
	// EndRequest cleans up after the response has been returned.
	EndRequest() (CleanupResult, error)
	// Interposes reports whether the strategy proxies request input and
	// output through a manager process (§4.5).
	Interposes() bool
	// CanSkipCleanup reports whether the strategy may safely skip
	// EndRequest between consecutive requests from mutually trusting
	// callers (§4.4's optimization). Fork-based isolation cannot: its
	// per-request child must be reaped regardless of trust.
	CanSkipCleanup() bool
}

// Cloneable is implemented by strategies whose recorded snapshot can seed
// sibling containers (snapshot-clone cold starts): ExportImage hands out a
// self-contained copy-on-write image of the snapshot, and NewCloned spawns
// a fresh strategy-plus-process from such an image.
type Cloneable interface {
	ExportImage(meter *sim.Meter) (*core.SnapshotImage, error)
}

// StateStorer is implemented by strategies that hold a Groundhog state
// store; StateStoreBytes reports its materialized memory (the per-container
// snapshot overhead of §5.5).
type StateStorer interface {
	StateStoreBytes() int
}

// Releaser is implemented by strategies that hold kernel resources beyond
// the function process itself — snapshot frame references in a CoW or
// clone-shared state store. Release returns them to physical memory; the
// platform calls it when the container is torn down (the process's own
// memory is freed separately by the kernel's exit).
type Releaser interface {
	Release()
}

// CanClone reports whether mode's strategy records a snapshot that sibling
// containers can be cloned from. BASE has no snapshot and fork-based
// isolation re-forks from the warm parent per request, so neither supports
// cloning.
func CanClone(mode Mode) bool {
	switch mode {
	case ModeGH, ModeGHNop, ModeFaasm:
		return true
	}
	return false
}

// NewCloned constructs the strategy for mode over a fresh process cloned
// from img: the process maps the image's frames copy-on-write and its
// manager already holds the snapshot, so Init must NOT be called — the
// container is serve-ready at a small fraction of the full cold-start cost.
// Clone charges (spawn-from-image, seize, tracking re-arm) go to meter.
func NewCloned(mode Mode, k *kernel.Kernel, img *core.SnapshotImage, meter *sim.Meter) (Strategy, *kernel.Process, error) {
	if !CanClone(mode) {
		return nil, nil, fmt.Errorf("isolation: mode %q does not support snapshot cloning", mode)
	}
	m, err := core.NewManagerFromSnapshot(k, img, core.DefaultOptions(), meter)
	if err != nil {
		return nil, nil, err
	}
	p := m.Process()
	if mode == ModeFaasm {
		return &faasmStrategy{kern: k, manager: m, proc: p}, p, nil
	}
	return &groundhogStrategy{kern: k, manager: m, proc: p, restore: mode == ModeGH}, p, nil
}

// New constructs the strategy for mode over the warm function process p,
// using the default eager-copy StateStore for snapshotting strategies.
func New(mode Mode, k *kernel.Kernel, p *kernel.Process) (Strategy, error) {
	return NewWithStore(mode, k, p, core.StoreCopy)
}

// NewWithStore is New with an explicit StateStore implementation (§5.5) for
// the snapshotting strategies (GH, GH-NOP, FAASM); BASE and fork take no
// snapshot and ignore it.
func NewWithStore(mode Mode, k *kernel.Kernel, p *kernel.Process, store core.StoreKind) (Strategy, error) {
	opts := core.DefaultOptions()
	opts.Store = store
	switch mode {
	case ModeBase:
		return &baseStrategy{proc: p}, nil
	case ModeGH:
		return newGroundhog(k, p, true, opts)
	case ModeGHNop:
		return newGroundhog(k, p, false, opts)
	case ModeFork:
		return newForkStrategy(k, p)
	case ModeFaasm:
		return newFaasm(k, p, opts)
	default:
		return nil, fmt.Errorf("isolation: unknown mode %q", mode)
	}
}

// baseStrategy is the insecure baseline: plain container reuse.
type baseStrategy struct {
	proc *kernel.Process
}

func (s *baseStrategy) Mode() Mode                  { return ModeBase }
func (s *baseStrategy) CanSkipCleanup() bool        { return true }
func (s *baseStrategy) Init() (sim.Duration, error) { return 0, nil }
func (s *baseStrategy) Interposes() bool            { return false }

func (s *baseStrategy) BeginRequest(*sim.Meter) (*kernel.Process, error) {
	return s.proc, nil
}

func (s *baseStrategy) EndRequest() (CleanupResult, error) {
	return CleanupResult{}, nil
}

// groundhogStrategy wraps a core.Manager. With restore=false it is the
// GH-NOP configuration: the snapshot is taken and requests are proxied, but
// state is never rolled back — appropriate when consecutive callers mutually
// trust each other (§4.4), and useful to separate tracking cost from
// restoration cost (§5.1).
type groundhogStrategy struct {
	kern    *kernel.Kernel
	manager *core.Manager
	proc    *kernel.Process
	restore bool
}

func newGroundhog(k *kernel.Kernel, p *kernel.Process, restore bool, opts core.Options) (*groundhogStrategy, error) {
	m, err := core.NewManager(k, p, opts)
	if err != nil {
		return nil, err
	}
	return &groundhogStrategy{kern: k, manager: m, proc: p, restore: restore}, nil
}

func (s *groundhogStrategy) Mode() Mode {
	if s.restore {
		return ModeGH
	}
	return ModeGHNop
}

func (s *groundhogStrategy) Interposes() bool     { return true }
func (s *groundhogStrategy) CanSkipCleanup() bool { return true }

func (s *groundhogStrategy) Init() (sim.Duration, error) {
	stats, err := s.manager.TakeSnapshot()
	if err != nil {
		return 0, err
	}
	return stats.Duration, nil
}

func (s *groundhogStrategy) Manager() *core.Manager { return s.manager }

// ExportImage hands out a shareable copy-on-write image of the snapshot for
// sibling-container cloning.
func (s *groundhogStrategy) ExportImage(meter *sim.Meter) (*core.SnapshotImage, error) {
	return s.manager.ExportImage(meter)
}

// StateStoreBytes reports the manager's state-store memory.
func (s *groundhogStrategy) StateStoreBytes() int { return s.manager.StateStoreBytes() }

// Release returns the manager's snapshot frame references to physical memory
// (container teardown).
func (s *groundhogStrategy) Release() { s.manager.Release() }

func (s *groundhogStrategy) BeginRequest(*sim.Meter) (*kernel.Process, error) {
	if !s.manager.HasSnapshot() {
		return nil, fmt.Errorf("isolation: groundhog request before Init")
	}
	return s.proc, nil
}

func (s *groundhogStrategy) EndRequest() (CleanupResult, error) {
	if !s.restore {
		return CleanupResult{}, nil
	}
	st, err := s.manager.Restore()
	if err != nil {
		return CleanupResult{}, err
	}
	return CleanupResult{Duration: st.Total, Restore: st, Restored: true}, nil
}

// forkStrategy serves each request in a child forked from the warm parent.
// fork(2) cannot capture multi-threaded runtimes, so construction fails for
// them — the limitation that motivates Groundhog's design (§3.2).
type forkStrategy struct {
	kern   *kernel.Kernel
	parent *kernel.Process
	child  *kernel.Process
}

func newForkStrategy(k *kernel.Kernel, p *kernel.Process) (*forkStrategy, error) {
	if len(p.Threads) > 1 {
		return nil, fmt.Errorf("isolation: fork cannot isolate %d-threaded process %d",
			len(p.Threads), p.PID)
	}
	return &forkStrategy{kern: k, parent: p}, nil
}

func (s *forkStrategy) Mode() Mode                  { return ModeFork }
func (s *forkStrategy) Init() (sim.Duration, error) { return 0, nil }
func (s *forkStrategy) Interposes() bool            { return true }
func (s *forkStrategy) CanSkipCleanup() bool        { return false }

func (s *forkStrategy) BeginRequest(meter *sim.Meter) (*kernel.Process, error) {
	if s.child != nil {
		return nil, fmt.Errorf("isolation: overlapping fork requests")
	}
	child, err := s.kern.Fork(s.parent, meter) // fork cost is on the critical path
	if err != nil {
		return nil, err
	}
	s.child = child
	return child, nil
}

// Release reaps a child orphaned by a mid-request crash: the parent's own
// exit does not free the forked child's address space, so a torn-down
// container must discard any in-flight child or its frames leak.
func (s *forkStrategy) Release() {
	if s.child != nil {
		s.kern.Exit(s.child)
		s.child = nil
	}
}

func (s *forkStrategy) EndRequest() (CleanupResult, error) {
	if s.child == nil {
		return CleanupResult{}, fmt.Errorf("isolation: EndRequest without BeginRequest")
	}
	// Discarding the child is the cleanup; it is nearly free.
	s.kern.Exit(s.child)
	s.child = nil
	return CleanupResult{Duration: forkTeardown, Restored: true}, nil
}

// forkTeardown is the cost of reaping the per-request child.
const forkTeardown = 50 * time.Microsecond

// faasmStrategy models FAASM's Faaslet reset: the function's linear memory
// is remapped copy-on-write to a checkpointed state between requests. The
// functional rollback reuses Groundhog's state store (the simulated
// equivalent of the checkpointed heap); the cost model is FAASM's — a cheap
// base remap plus a per-dirty-page repair, with no full pagemap scan.
// Execution-speed differences (native vs WebAssembly) are applied by the
// runtime layer, not here.
type faasmStrategy struct {
	kern    *kernel.Kernel
	manager *core.Manager
	proc    *kernel.Process
}

func newFaasm(k *kernel.Kernel, p *kernel.Process, opts core.Options) (*faasmStrategy, error) {
	m, err := core.NewManager(k, p, opts)
	if err != nil {
		return nil, err
	}
	return &faasmStrategy{kern: k, manager: m, proc: p}, nil
}

func (s *faasmStrategy) Mode() Mode           { return ModeFaasm }
func (s *faasmStrategy) CanSkipCleanup() bool { return true }
func (s *faasmStrategy) Interposes() bool     { return false }

func (s *faasmStrategy) Init() (sim.Duration, error) {
	stats, err := s.manager.TakeSnapshot()
	if err != nil {
		return 0, err
	}
	return stats.Duration, nil
}

// ExportImage hands out a shareable copy-on-write image of the checkpoint
// for sibling-Faaslet cloning.
func (s *faasmStrategy) ExportImage(meter *sim.Meter) (*core.SnapshotImage, error) {
	return s.manager.ExportImage(meter)
}

// StateStoreBytes reports the checkpoint's state-store memory.
func (s *faasmStrategy) StateStoreBytes() int { return s.manager.StateStoreBytes() }

// Release returns the checkpoint's frame references to physical memory
// (Faaslet teardown).
func (s *faasmStrategy) Release() { s.manager.Release() }

func (s *faasmStrategy) BeginRequest(*sim.Meter) (*kernel.Process, error) {
	if !s.manager.HasSnapshot() {
		return nil, fmt.Errorf("isolation: faasm request before Init")
	}
	return s.proc, nil
}

func (s *faasmStrategy) EndRequest() (CleanupResult, error) {
	st, err := s.manager.Restore()
	if err != nil {
		return CleanupResult{}, err
	}
	// Replace Groundhog's metered cost with the Faaslet reset model: the
	// functional rollback is identical, the price is not.
	cost := s.kern.Cost.FaasmResetBase +
		s.kern.Cost.FaasmResetPerPage*sim.Duration(st.RestoredPages)
	st.Total = cost
	return CleanupResult{Duration: cost, Restore: st, Restored: true}, nil
}
