package isolation

import (
	"testing"

	"groundhog/internal/core"
)

func TestModeAndSkipFlags(t *testing.T) {
	k, p := warmProcess(t, 1)
	want := map[Mode]bool{ // mode -> CanSkipCleanup
		ModeBase:  true,
		ModeGH:    true,
		ModeGHNop: true,
		ModeFork:  false,
		ModeFaasm: true,
	}
	for mode, canSkip := range want {
		s, err := New(mode, k, p)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if s.Mode() != mode {
			t.Fatalf("Mode() = %v, want %v", s.Mode(), mode)
		}
		if s.CanSkipCleanup() != canSkip {
			t.Fatalf("%v CanSkipCleanup = %v, want %v", mode, s.CanSkipCleanup(), canSkip)
		}
	}
}

func TestGroundhogManagerAccessor(t *testing.T) {
	k, p := warmProcess(t, 1)
	s, err := newGroundhog(k, p, true, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s.Manager() == nil {
		t.Fatal("nil manager")
	}
}

func TestForkEndWithoutBegin(t *testing.T) {
	s := initStrategy(t, ModeFork, 1)
	// Consume the pending request from initStrategy? initStrategy only
	// inits. EndRequest without BeginRequest must fail.
	if _, err := s.EndRequest(); err == nil {
		t.Fatal("fork EndRequest without BeginRequest succeeded")
	}
}

func TestBaseBeginEndAreFree(t *testing.T) {
	s := initStrategy(t, ModeBase, 1)
	p, err := s.BeginRequest(nil)
	if err != nil || p == nil {
		t.Fatalf("BeginRequest: %v", err)
	}
	res, err := s.EndRequest()
	if err != nil || res.Restored || res.Duration != 0 {
		t.Fatalf("EndRequest: %+v, %v", res, err)
	}
}
