package procfs

import (
	"testing"
	"testing/quick"

	"groundhog/internal/kernel"
	"groundhog/internal/mem"
	"groundhog/internal/vm"
)

// Property: for any layout built from random operations, rendering
// /proc/pid/maps and parsing it back yields the exact region list — the
// round trip Groundhog's snapshotter depends on.
func TestMapsRoundTripProperty(t *testing.T) {
	type op struct {
		Kind uint8
		A    uint16
	}
	f := func(ops []op) bool {
		k := kernel.New(kernel.Default())
		p, err := k.Spawn(kernel.ExecSpec{TextPages: 4, DataPages: 2, Threads: 1})
		if err != nil {
			return false
		}
		fs := New(k)
		var mapped []vm.Addr
		for i, o := range ops {
			switch o.Kind % 4 {
			case 0:
				prot := vm.ProtRW
				if o.A%3 == 0 {
					prot = vm.ProtRead
				}
				name := ""
				if o.A%2 == 0 {
					name = "/lib/x" + string(rune('a'+i%26)) + ".so"
				}
				kind := vm.KindAnon
				if name != "" {
					kind = vm.KindFile
				}
				if a, err := p.AS.Mmap((int(o.A%5)+1)*mem.PageSize, prot, kind, name); err == nil {
					mapped = append(mapped, a)
				}
			case 1:
				if len(mapped) > 0 {
					_ = p.AS.Munmap(mapped[int(o.A)%len(mapped)], mem.PageSize)
				}
			case 2:
				if len(mapped) > 0 {
					_ = p.AS.Mprotect(mapped[int(o.A)%len(mapped)], mem.PageSize, vm.ProtRead)
				}
			case 3:
				_, _ = p.AS.Brk(p.AS.HeapBase() + vm.Addr(int(o.A%16)*mem.PageSize))
			}
		}
		text := fs.Maps(p, nil)
		parsed, err := ParseMaps(text)
		if err != nil {
			t.Logf("parse error: %v\n%s", err, text)
			return false
		}
		want := p.AS.VMAs()
		if len(parsed) != len(want) {
			return false
		}
		for i := range want {
			if parsed[i] != want[i] {
				t.Logf("region %d: %+v != %+v", i, parsed[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
