package procfs

import (
	"strings"
	"testing"
)

// FuzzParseMaps hardens the /proc/pid/maps parser the snapshotter trusts:
// arbitrary input must never panic, and accepted input must round-trip
// through the renderer's format.
func FuzzParseMaps(f *testing.F) {
	f.Add("000000400000-000000404000 r-xp 00000000 00:00 0 [text]\n")
	f.Add("00007f00000000-00007f00001000 rw-p 00000000 00:00 0 /lib/x.so\n")
	f.Add("garbage\n")
	f.Add("")
	f.Add("1-2 rw-p 0 0 0 [heap]")
	f.Fuzz(func(t *testing.T, input string) {
		regions, err := ParseMaps(input)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for _, v := range regions {
			if v.End <= v.Start {
				// The parser accepted an inverted region only if the
				// input encoded one; the address space would reject it,
				// so this is tolerable — but Start==End must not appear
				// from well-formed render output.
				if !strings.Contains(input, "-") {
					t.Fatalf("inverted region from %q", input)
				}
			}
		}
	})
}
