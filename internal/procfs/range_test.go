package procfs

import (
	"testing"

	"groundhog/internal/kernel"
	"groundhog/internal/mem"
	"groundhog/internal/sim"
	"groundhog/internal/vm"
)

func rangeTestProcess(t *testing.T) (*kernel.Kernel, *kernel.Process, *FS) {
	t.Helper()
	k := kernel.New(kernel.Default())
	p, err := k.Spawn(kernel.ExecSpec{TextPages: 4, DataPages: 2, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AS.Brk(p.AS.HeapBase() + 8*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.AS.WriteWord(p.AS.HeapBase()+vm.Addr(i*mem.PageSize), uint64(i+1))
	}
	return k, p, New(k)
}

// TestPagemapRangeEquivalentToFullScan asserts the VMA-scoped scan, stitched
// across all regions, reproduces the full-address-space Pagemap exactly.
func TestPagemapRangeEquivalentToFullScan(t *testing.T) {
	_, p, fs := rangeTestProcess(t)
	full := fs.Pagemap(p, nil)
	var ranged []PageFlags
	for _, v := range p.AS.VMAs() {
		ranged = fs.PagemapRange(p, v.Start, v.End, nil, ranged)
	}
	if len(ranged) != len(full) {
		t.Fatalf("ranged scan yields %d entries, full scan %d", len(ranged), len(full))
	}
	for i := range full {
		if ranged[i] != full[i] {
			t.Fatalf("entry %d: ranged %+v != full %+v", i, ranged[i], full[i])
		}
	}
}

func TestPagemapRangeChargesSeekPlusPerPage(t *testing.T) {
	k, p, fs := rangeTestProcess(t)
	v := p.AS.VMAs()[0]
	m := sim.NewMeter()
	fs.PagemapRange(p, v.Start, v.End, m, nil)
	want := k.Cost.PagemapRangeBase + k.Cost.PagemapPerPage*sim.Duration(v.Pages())
	if m.Total() != want {
		t.Fatalf("ranged scan cost %v, want %v", m.Total(), want)
	}
}

func TestPagemapRangeReusesBuffer(t *testing.T) {
	_, p, fs := rangeTestProcess(t)
	v := p.AS.VMAs()[0]
	buf := fs.PagemapRange(p, v.Start, v.End, nil, nil)
	again := fs.PagemapRange(p, v.Start, v.End, nil, buf[:0])
	if &again[0] != &buf[0] {
		t.Fatal("PagemapRange reallocated despite sufficient capacity")
	}
}

// TestMapsRegionsEquivalentToTextPath asserts the binary maps fast path
// returns exactly what rendering and re-parsing the text form does, at the
// same metered cost.
func TestMapsRegionsEquivalentToTextPath(t *testing.T) {
	_, p, fs := rangeTestProcess(t)

	mText := sim.NewMeter()
	parsed, err := ParseMaps(fs.Maps(p, mText))
	if err != nil {
		t.Fatal(err)
	}
	mBin := sim.NewMeter()
	direct := fs.MapsRegions(p, mBin, nil)

	if len(direct) != len(parsed) {
		t.Fatalf("binary path %d regions, text path %d", len(direct), len(parsed))
	}
	for i := range parsed {
		if direct[i] != parsed[i] {
			t.Fatalf("region %d: binary %+v != text %+v", i, direct[i], parsed[i])
		}
	}
	if mBin.Total() != mText.Total() {
		t.Fatalf("binary path cost %v, text path %v", mBin.Total(), mText.Total())
	}
}
