// Package procfs exposes the simulated kernel's per-process state the way
// Linux's /proc filesystem does: the maps file (memory regions), the pagemap
// file (per-page present and soft-dirty bits), and the clear_refs control
// file. Groundhog's manager consumes exactly these three interfaces (§4.2,
// §4.3 of the paper).
//
// Maps is rendered to (and parsed from) real text in the /proc/pid/maps
// format: the snapshotter works from the parsed text, not from privileged
// pointers into the kernel, mirroring the userspace boundary the real system
// has to respect.
package procfs

import (
	"bufio"
	"fmt"
	"strings"

	"groundhog/internal/kernel"
	"groundhog/internal/sim"
	"groundhog/internal/vm"
)

// FS reads per-process files from a simulated kernel.
type FS struct {
	kern *kernel.Kernel
}

// New returns a /proc view over k.
func New(k *kernel.Kernel) *FS { return &FS{kern: k} }

// Maps renders /proc/pid/maps for p, charging the read cost to meter.
func (fs *FS) Maps(p *kernel.Process, meter *sim.Meter) string {
	vmas := p.AS.VMAs()
	sim.ChargeTo(meter, fs.kern.Cost.ReadMapsBase)
	sim.ChargeTo(meter, fs.kern.Cost.ReadMapsPerVMA*sim.Duration(len(vmas)))
	var b strings.Builder
	for _, v := range vmas {
		name := v.Name
		if name == "" {
			name = "[" + v.Kind.String() + "]"
		}
		fmt.Fprintf(&b, "%012x-%012x %s 00000000 00:00 0 %s\n",
			uint64(v.Start), uint64(v.End), v.Prot, name)
	}
	return b.String()
}

// MapsRegions reads p's memory layout directly into buf (appending, so a
// caller that reuses buf across calls allocates nothing) and returns the
// extended slice. It charges exactly the costs of Maps: this is the same
// /proc/pid/maps read, parsed into a preallocated region buffer instead of
// through an intermediate string. Equivalence with ParseMaps(Maps(...)) is
// asserted by tests; the restore hot path uses this form.
func (fs *FS) MapsRegions(p *kernel.Process, meter *sim.Meter, buf []vm.VMA) []vm.VMA {
	sim.ChargeTo(meter, fs.kern.Cost.ReadMapsBase)
	sim.ChargeTo(meter, fs.kern.Cost.ReadMapsPerVMA*sim.Duration(p.AS.NumVMAs()))
	return p.AS.AppendVMAs(buf)
}

// ParseMaps parses text in the format produced by Maps back into regions.
func ParseMaps(text string) ([]vm.VMA, error) {
	var out []vm.VMA
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 6 {
			return nil, fmt.Errorf("procfs: short maps line %q", line)
		}
		var start, end uint64
		if _, err := fmt.Sscanf(fields[0], "%x-%x", &start, &end); err != nil {
			return nil, fmt.Errorf("procfs: bad range in %q: %v", line, err)
		}
		prot, err := vm.ParseProt(fields[1])
		if err != nil {
			return nil, err
		}
		name := strings.Join(fields[5:], " ")
		v := vm.VMA{Start: vm.Addr(start), End: vm.Addr(end), Prot: prot}
		if strings.HasPrefix(name, "[") && strings.HasSuffix(name, "]") {
			kind, err := vm.ParseKind(name[1 : len(name)-1])
			if err != nil {
				return nil, err
			}
			v.Kind = kind
		} else {
			v.Kind = vm.KindFile
			v.Name = name
		}
		out = append(out, v)
	}
	return out, sc.Err()
}

// PageFlags is one pagemap entry: the per-page bits Groundhog consumes.
type PageFlags struct {
	VPN       uint64
	Present   bool
	SoftDirty bool
}

// Pagemap scans the pagemap entries for every page mapped by p's VMAs, in
// address order, charging the per-page scan cost. This models reading
// /proc/pid/pagemap across the whole address space — the reason restore cost
// grows with address-space size even at a fixed write-set size (Fig. 3
// right, §5.2.2).
func (fs *FS) Pagemap(p *kernel.Process, meter *sim.Meter) []PageFlags {
	var out []PageFlags
	scanned := 0
	for _, v := range p.AS.VMAs() {
		for vpn := v.Start.PageNum(); vpn < v.End.PageNum(); vpn++ {
			scanned++
			pf := PageFlags{VPN: vpn}
			if pte, ok := p.AS.PTEAt(vpn); ok {
				pf.Present = true
				pf.SoftDirty = pte.SoftDirty
			}
			out = append(out, pf)
		}
	}
	sim.ChargeTo(meter, fs.kern.Cost.PagemapPerPage*sim.Duration(scanned))
	return out
}

// PagemapRange scans the pagemap entries for the pages of [start, end) only,
// appending one PageFlags per page to buf and returning the extended slice.
// This is the VMA-scoped form of Pagemap: the snapshot and restore paths call
// it once per mapped region, reusing one buffer sized to the largest VMA,
// instead of synthesizing a flag slice for the whole address space. Each
// ranged read charges PagemapRangeBase (the seek to the range's file offset)
// plus the usual per-page cost.
func (fs *FS) PagemapRange(p *kernel.Process, start, end vm.Addr, meter *sim.Meter, buf []PageFlags) []PageFlags {
	scanned := 0
	for vpn := start.PageNum(); vpn < end.PageNum(); vpn++ {
		scanned++
		pf := PageFlags{VPN: vpn}
		if pte, ok := p.AS.PTEAt(vpn); ok {
			pf.Present = true
			pf.SoftDirty = pte.SoftDirty
		}
		buf = append(buf, pf)
	}
	sim.ChargeTo(meter, fs.kern.Cost.PagemapRangeBase)
	sim.ChargeTo(meter, fs.kern.Cost.PagemapPerPage*sim.Duration(scanned))
	return buf
}

// PagemapRangePresent scans the pagemap entries for [start, end) like
// PagemapRange but appends only the present pages' entries — the form the
// snapshot and restore hot paths consume, walking the page table's resident
// chunks instead of testing every page of the span. The charge is identical
// to PagemapRange's: reading the range still costs PagemapRangeBase plus the
// per-page cost over every page of the span, present or not.
func (fs *FS) PagemapRangePresent(p *kernel.Process, start, end vm.Addr, meter *sim.Meter, buf []vm.PagemapEntry) []vm.PagemapEntry {
	buf = p.AS.AppendPagemapRange(start.PageNum(), end.PageNum(), buf)
	sim.ChargeTo(meter, fs.kern.Cost.PagemapRangeBase)
	sim.ChargeTo(meter, fs.kern.Cost.PagemapPerPage*sim.Duration(end.PageNum()-start.PageNum()))
	return buf
}

// SoftDirtyVPNs scans the pagemap and returns only the present, soft-dirty
// page numbers (sorted). The full scan cost is still charged: identifying
// the dirty set requires reading every entry.
func (fs *FS) SoftDirtyVPNs(p *kernel.Process, meter *sim.Meter) []uint64 {
	var dirty []uint64
	for _, pf := range fs.Pagemap(p, meter) {
		if pf.Present && pf.SoftDirty {
			dirty = append(dirty, pf.VPN)
		}
	}
	return dirty
}

// ClearRefs models writing "4" to /proc/pid/clear_refs: every resident
// page's soft-dirty bit is cleared and the page write-protected so the next
// write re-records it. The cost is proportional to the resident set.
func (fs *FS) ClearRefs(p *kernel.Process, meter *sim.Meter) {
	walked := p.AS.ClearSoftDirty()
	sim.ChargeTo(meter, fs.kern.Cost.ClearRefsPerPage*sim.Duration(walked))
}
