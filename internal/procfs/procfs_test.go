package procfs

import (
	"fmt"
	"strings"
	"testing"

	"groundhog/internal/kernel"
	"groundhog/internal/mem"
	"groundhog/internal/sim"
	"groundhog/internal/vm"
)

func newProc(t *testing.T) (*kernel.Kernel, *kernel.Process, *FS) {
	t.Helper()
	k := kernel.New(kernel.Default())
	p, err := k.Spawn(kernel.ExecSpec{TextPages: 4, DataPages: 2, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	return k, p, New(k)
}

func TestMapsRenderAndParseRoundTrip(t *testing.T) {
	_, p, fs := newProc(t)
	if _, err := p.AS.Brk(p.AS.HeapBase() + 3*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AS.Mmap(2*mem.PageSize, vm.ProtRead, vm.KindFile, "/lib/libfoo.so"); err != nil {
		t.Fatal(err)
	}
	text := fs.Maps(p, nil)
	parsed, err := ParseMaps(text)
	if err != nil {
		t.Fatalf("ParseMaps: %v\n%s", err, text)
	}
	want := p.AS.VMAs()
	if len(parsed) != len(want) {
		t.Fatalf("parsed %d regions, want %d\n%s", len(parsed), len(want), text)
	}
	for i := range want {
		if parsed[i].Start != want[i].Start || parsed[i].End != want[i].End ||
			parsed[i].Prot != want[i].Prot || parsed[i].Kind != want[i].Kind ||
			parsed[i].Name != want[i].Name {
			t.Fatalf("region %d: parsed %+v, want %+v", i, parsed[i], want[i])
		}
	}
}

func TestMapsIncludesNamedFile(t *testing.T) {
	_, p, fs := newProc(t)
	if _, err := p.AS.Mmap(mem.PageSize, vm.ProtRead, vm.KindFile, "/usr/lib/python3.8"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fs.Maps(p, nil), "/usr/lib/python3.8") {
		t.Fatal("maps missing file name")
	}
}

func TestParseMapsRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"not a maps line at all x y",
		"zzzz-qqqq rw-p 00000000 00:00 0 [heap]",
	} {
		if _, err := ParseMaps(bad); err == nil {
			t.Fatalf("ParseMaps accepted %q", bad)
		}
	}
}

func TestParseMapsSkipsBlankLines(t *testing.T) {
	got, err := ParseMaps("\n\n")
	if err != nil || len(got) != 0 {
		t.Fatalf("blank input: %v, %v", got, err)
	}
}

func TestMapsCostScalesWithVMAs(t *testing.T) {
	k, p, fs := newProc(t)
	m1 := sim.NewMeter()
	fs.Maps(p, m1)
	for i := 0; i < 10; i++ {
		// Distinct names prevent the mm from merging adjacent regions.
		if _, err := p.AS.Mmap(mem.PageSize, vm.ProtRW, vm.KindFile, fmt.Sprintf("/lib/l%d.so", i)); err != nil {
			t.Fatal(err)
		}
	}
	m2 := sim.NewMeter()
	fs.Maps(p, m2)
	wantDelta := k.Cost.ReadMapsPerVMA * 10
	if m2.Total()-m1.Total() != wantDelta {
		t.Fatalf("cost delta = %v, want %v", m2.Total()-m1.Total(), wantDelta)
	}
}

func TestPagemapFlags(t *testing.T) {
	_, p, fs := newProc(t)
	heap := p.AS.HeapBase()
	if _, err := p.AS.Brk(heap + 4*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	p.AS.WriteWord(heap, 1)
	p.AS.WriteWord(heap+2*mem.PageSize, 1)
	flags := fs.Pagemap(p, nil)
	byVPN := map[uint64]PageFlags{}
	for _, f := range flags {
		byVPN[f.VPN] = f
	}
	h0 := byVPN[heap.PageNum()]
	if !h0.Present || !h0.SoftDirty {
		t.Fatalf("page 0 flags = %+v, want present+dirty", h0)
	}
	h1 := byVPN[(heap + mem.PageSize).PageNum()]
	if h1.Present {
		t.Fatalf("untouched page present: %+v", h1)
	}
}

func TestPagemapCoversWholeMappedSpace(t *testing.T) {
	_, p, fs := newProc(t)
	flags := fs.Pagemap(p, nil)
	if len(flags) != p.AS.MappedPages() {
		t.Fatalf("pagemap entries = %d, want %d", len(flags), p.AS.MappedPages())
	}
}

func TestPagemapScanCostProportionalToAddressSpace(t *testing.T) {
	k, p, fs := newProc(t)
	m1 := sim.NewMeter()
	fs.Pagemap(p, m1)
	if _, err := p.AS.Mmap(1000*mem.PageSize, vm.ProtRW, vm.KindAnon, ""); err != nil {
		t.Fatal(err)
	}
	m2 := sim.NewMeter()
	fs.Pagemap(p, m2)
	wantDelta := k.Cost.PagemapPerPage * 1000
	if m2.Total()-m1.Total() != wantDelta {
		t.Fatalf("scan cost delta = %v, want %v", m2.Total()-m1.Total(), wantDelta)
	}
}

func TestSoftDirtyLifecycle(t *testing.T) {
	_, p, fs := newProc(t)
	heap := p.AS.HeapBase()
	if _, err := p.AS.Brk(heap + 8*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		p.AS.WriteWord(heap+vm.Addr(i*mem.PageSize), 1)
	}
	fs.ClearRefs(p, nil)
	if d := fs.SoftDirtyVPNs(p, nil); len(d) != 0 {
		t.Fatalf("dirty after clear: %v", d)
	}
	p.AS.WriteWord(heap+5*mem.PageSize, 2)
	d := fs.SoftDirtyVPNs(p, nil)
	if len(d) != 1 || d[0] != (heap+5*mem.PageSize).PageNum() {
		t.Fatalf("dirty = %v", d)
	}
}

func TestClearRefsCostPerResidentPage(t *testing.T) {
	k, p, fs := newProc(t)
	heap := p.AS.HeapBase()
	if _, err := p.AS.Brk(heap + 6*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		p.AS.WriteWord(heap+vm.Addr(i*mem.PageSize), 1)
	}
	resident := p.AS.ResidentPages()
	m := sim.NewMeter()
	fs.ClearRefs(p, m)
	want := k.Cost.ClearRefsPerPage * sim.Duration(resident)
	if m.Total() != want {
		t.Fatalf("clear_refs cost = %v, want %v", m.Total(), want)
	}
}
