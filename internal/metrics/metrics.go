// Package metrics provides the small statistics and table-rendering toolkit
// the experiment harness uses to report the paper's figures and tables:
// means, standard deviations, percentiles, relative overheads, and aligned
// text tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary accumulates float64 samples and answers the usual statistics.
// The zero value is ready to use.
type Summary struct {
	samples []float64
	sorted  []float64 // lazily maintained sorted copy of samples
	clean   bool      // sorted mirrors samples
}

// PushBounded appends v to a drop-oldest sliding window: once the ring
// holds window elements, the oldest is shifted out first. The fleet's
// policy signals and the server's per-deployment latency summary share
// this idiom so their windowed semantics cannot diverge.
func PushBounded[T any](ring []T, v T, window int) []T {
	if window > 0 && len(ring) >= window {
		copy(ring, ring[1:])
		ring = ring[:len(ring)-1]
	}
	return append(ring, v)
}

// NewSummary returns a summary over the given samples. The summary retains
// the slice but never reorders it (order statistics work on an internal
// sorted copy; TestNewSummaryDoesNotMutateCaller pins this); a later Add may
// append into the slice's spare capacity, so the caller must not grow it.
func NewSummary(samples []float64) *Summary {
	return &Summary{samples: samples}
}

// Add appends one sample.
func (s *Summary) Add(v float64) {
	s.samples = append(s.samples, v)
	s.clean = false
}

// AddDuration appends a duration sample in milliseconds.
func (s *Summary) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// N returns the number of samples.
func (s *Summary) N() int { return len(s.samples) }

// Samples returns a copy of the accumulated samples, for pooling several
// summaries into one (fleet-wide percentiles over per-function summaries).
func (s *Summary) Samples() []float64 {
	return append([]float64(nil), s.samples...)
}

// Mean returns the arithmetic mean (0 for no samples).
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.samples {
		sum += v
	}
	return sum / float64(len(s.samples))
}

// Std returns the population standard deviation.
func (s *Summary) Std() float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.samples {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// CoV returns the coefficient of variation in percent.
func (s *Summary) CoV() float64 {
	if m := s.Mean(); m != 0 {
		return 100 * s.Std() / m
	}
	return 0
}

func (s *Summary) ensureSorted() {
	if !s.clean {
		s.sorted = append(s.sorted[:0], s.samples...)
		sort.Float64s(s.sorted)
		s.clean = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) by linear
// interpolation between closest ranks.
func (s *Summary) Percentile(p float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return PercentileSorted(s.sorted, p)
}

// PercentileSorted returns the p-th percentile of an already-sorted sample
// slice by linear interpolation between closest ranks — the exact convention
// Summary.Percentile uses (it delegates here). Callers with a reusable
// sorted scratch buffer (the fleet's per-tick latency signals) get
// Summary-identical answers without building a Summary per read.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func (s *Summary) Median() float64 { return s.Percentile(50) }

// P99 returns the 99th percentile — the tail figure SLO dashboards and the
// failure benchmarks report alongside the mean.
func (s *Summary) P99() float64 { return s.Percentile(99) }

// P999 returns the 99.9th percentile: the deep tail, where rare events —
// a retried cold start, a crash-and-requeue — surface even when the p99
// barely moves.
func (s *Summary) P999() float64 { return s.Percentile(99.9) }

// Min returns the smallest sample.
func (s *Summary) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.sorted[0]
}

// Max returns the largest sample.
func (s *Summary) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.sorted[len(s.sorted)-1]
}

// RelOverheadPct returns (x-base)/base in percent — the paper's relative
// overhead convention (positive is worse than baseline).
func RelOverheadPct(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (x - base) / base
}

// Ratio returns x/base (the paper's relative-throughput convention).
func Ratio(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return x / base
}

// Table renders aligned text tables for the CLI and the experiment logs.
type Table struct {
	header []string
	rows   [][]string
	title  string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cells ...interface{}) {
	t.AddRow(strings.Split(fmt.Sprintf(format, cells...), "\t")...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render returns the aligned table as a string.
func (t *Table) Render() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "# %s\n", t.title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(cells)-1 {
				b.WriteString(c) // no trailing padding
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
