package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 {
		t.Fatalf("N=%d mean=%v", s.N(), s.Mean())
	}
	if got := s.Std(); math.Abs(got-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("std = %v", got)
	}
	if s.Median() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("median/min/max = %v/%v/%v", s.Median(), s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.Median() != 0 || s.Percentile(95) != 0 || s.Min() != 0 || s.Max() != 0 || s.CoV() != 0 {
		t.Fatal("empty summary not all-zero")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Summary
	for _, v := range []float64{10, 20, 30, 40} {
		s.Add(v)
	}
	if got := s.Percentile(50); got != 25 {
		t.Fatalf("p50 = %v, want 25", got)
	}
	if got := s.Percentile(0); got != 10 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 40 {
		t.Fatalf("p100 = %v", got)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []float64, a, b uint8) bool {
		var s Summary
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s.Add(v)
			}
		}
		p1, p2 := float64(a%101), float64(b%101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return s.Percentile(p1) <= s.Percentile(p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddDuration(t *testing.T) {
	var s Summary
	s.AddDuration(1500 * time.Microsecond)
	if got := s.Mean(); got != 1.5 {
		t.Fatalf("duration sample = %v ms, want 1.5", got)
	}
}

func TestCoV(t *testing.T) {
	var s Summary
	s.Add(10)
	s.Add(10)
	if s.CoV() != 0 {
		t.Fatalf("CoV of constant = %v", s.CoV())
	}
}

func TestRelOverheadAndRatio(t *testing.T) {
	if got := RelOverheadPct(110, 100); math.Abs(got-10) > 1e-9 {
		t.Fatalf("rel overhead = %v", got)
	}
	if got := RelOverheadPct(90, 100); math.Abs(got+10) > 1e-9 {
		t.Fatalf("rel overhead = %v", got)
	}
	if RelOverheadPct(5, 0) != 0 || Ratio(5, 0) != 0 {
		t.Fatal("zero baseline not handled")
	}
	if got := Ratio(50, 100); got != 0.5 {
		t.Fatalf("ratio = %v", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Fig X", "name", "value")
	tb.AddRow("alpha", "1.0")
	tb.AddRowf("beta\t%0.1f", 2.5)
	out := tb.Render()
	if !strings.Contains(out, "# Fig X") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.5") {
		t.Fatalf("missing rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableRowClamping(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1", "2", "3") // extra cell dropped
	tb.AddRow("only")        // short row padded
	out := tb.Render()
	if strings.Contains(out, "3") {
		t.Fatalf("extra cell kept:\n%s", out)
	}
}
