package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 {
		t.Fatalf("N=%d mean=%v", s.N(), s.Mean())
	}
	if got := s.Std(); math.Abs(got-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("std = %v", got)
	}
	if s.Median() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("median/min/max = %v/%v/%v", s.Median(), s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.Median() != 0 || s.Percentile(95) != 0 || s.Min() != 0 || s.Max() != 0 || s.CoV() != 0 {
		t.Fatal("empty summary not all-zero")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Summary
	for _, v := range []float64{10, 20, 30, 40} {
		s.Add(v)
	}
	if got := s.Percentile(50); got != 25 {
		t.Fatalf("p50 = %v, want 25", got)
	}
	if got := s.Percentile(0); got != 10 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 40 {
		t.Fatalf("p100 = %v", got)
	}
}

// TestPercentileTable pins p50/p95/p99 on known sample sets — the SLO
// comparisons in the scheduling policies read these exact figures, so the
// closest-ranks interpolation must stay put. Rank = p/100 * (n-1); the
// value interpolates linearly between the two bracketing order statistics.
func TestPercentileTable(t *testing.T) {
	cases := []struct {
		name    string
		samples []float64
		p       float64
		want    float64
	}{
		// n=1: every percentile is the sample.
		{"n1-p50", []float64{7}, 50, 7},
		{"n1-p95", []float64{7}, 95, 7},
		{"n1-p99", []float64{7}, 99, 7},
		// n=2: p50 lands mid-gap, the tails interpolate toward the max.
		{"n2-p50", []float64{10, 20}, 50, 15},
		{"n2-p95", []float64{10, 20}, 95, 19.5},
		{"n2-p99", []float64{10, 20}, 99, 19.9},
		// 0..100 step 1 (n=101): rank == percentile exactly.
		{"n101-p50", ramp(101), 50, 50},
		{"n101-p95", ramp(101), 95, 95},
		{"n101-p99", ramp(101), 99, 99},
		// Duplicate-heavy: nine 1s and one 100 (inserted unsorted). p50
		// sits inside the duplicate run; p95 rank 8.55 interpolates
		// 1*(1-0.55)+100*0.55; p99 rank 8.91 likewise.
		{"dup-p50", []float64{100, 1, 1, 1, 1, 1, 1, 1, 1, 1}, 50, 1},
		{"dup-p95", []float64{100, 1, 1, 1, 1, 1, 1, 1, 1, 1}, 95, 55.45},
		{"dup-p99", []float64{100, 1, 1, 1, 1, 1, 1, 1, 1, 1}, 99, 91.09},
		// All-equal: interpolation between equal neighbors is exact.
		{"const-p50", []float64{5, 5, 5}, 50, 5},
		{"const-p99", []float64{5, 5, 5}, 99, 5},
		// Four samples: p95 rank 2.85 between 30 and 40.
		{"n4-p95", []float64{40, 10, 30, 20}, 95, 38.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var s Summary
			for _, v := range tc.samples {
				s.Add(v)
			}
			got := s.Percentile(tc.p)
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("p%v of %v = %v, want %v", tc.p, tc.samples, got, tc.want)
			}
			// Percentile reads must be stable: asking again (post-sort)
			// returns the identical value.
			if again := s.Percentile(tc.p); again != got {
				t.Fatalf("repeated read moved: %v -> %v", got, again)
			}
		})
	}
}

func TestTailPercentiles(t *testing.T) {
	cases := []struct {
		name      string
		samples   []float64
		p99, p999 float64
	}{
		// 1..1000: p99 rank 989.01 interpolates 990..991, p999 rank
		// 998.001 interpolates 999..1000.
		{"ramp1000", ramp1(1000), 990.01, 999.001},
		// One outlier in ten samples: both tails interpolate toward it,
		// p999 almost reaching it (ranks 8.91 and 8.991).
		{"outlier", []float64{1000, 1, 1, 1, 1, 1, 1, 1, 1, 1}, 910.09, 991.009},
		// A single sample is every percentile.
		{"n1", []float64{42}, 42, 42},
		{"const", []float64{5, 5, 5, 5}, 5, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var s Summary
			for _, v := range tc.samples {
				s.Add(v)
			}
			if got := s.P99(); math.Abs(got-tc.p99) > 1e-9 {
				t.Fatalf("P99 = %v, want %v", got, tc.p99)
			}
			if got := s.P999(); math.Abs(got-tc.p999) > 1e-9 {
				t.Fatalf("P999 = %v, want %v", got, tc.p999)
			}
			if s.P999() < s.P99() {
				t.Fatal("P999 below P99")
			}
		})
	}
	var empty Summary
	if empty.P99() != 0 || empty.P999() != 0 {
		t.Fatal("empty summary tails not zero")
	}
}

// ramp1 returns 1..n in reverse order.
func ramp1(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(n - i)
	}
	return out
}

// ramp returns 0..n-1 in reverse order (exercising the lazy sort).
func ramp(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(n - 1 - i)
	}
	return out
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []float64, a, b uint8) bool {
		var s Summary
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s.Add(v)
			}
		}
		p1, p2 := float64(a%101), float64(b%101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return s.Percentile(p1) <= s.Percentile(p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddDuration(t *testing.T) {
	var s Summary
	s.AddDuration(1500 * time.Microsecond)
	if got := s.Mean(); got != 1.5 {
		t.Fatalf("duration sample = %v ms, want 1.5", got)
	}
}

func TestCoV(t *testing.T) {
	var s Summary
	s.Add(10)
	s.Add(10)
	if s.CoV() != 0 {
		t.Fatalf("CoV of constant = %v", s.CoV())
	}
}

func TestRelOverheadAndRatio(t *testing.T) {
	if got := RelOverheadPct(110, 100); math.Abs(got-10) > 1e-9 {
		t.Fatalf("rel overhead = %v", got)
	}
	if got := RelOverheadPct(90, 100); math.Abs(got+10) > 1e-9 {
		t.Fatalf("rel overhead = %v", got)
	}
	if RelOverheadPct(5, 0) != 0 || Ratio(5, 0) != 0 {
		t.Fatal("zero baseline not handled")
	}
	if got := Ratio(50, 100); got != 0.5 {
		t.Fatalf("ratio = %v", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Fig X", "name", "value")
	tb.AddRow("alpha", "1.0")
	tb.AddRowf("beta\t%0.1f", 2.5)
	out := tb.Render()
	if !strings.Contains(out, "# Fig X") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.5") {
		t.Fatalf("missing rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableRowClamping(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1", "2", "3") // extra cell dropped
	tb.AddRow("only")        // short row padded
	out := tb.Render()
	if strings.Contains(out, "3") {
		t.Fatalf("extra cell kept:\n%s", out)
	}
}
