package metrics

import (
	"fmt"
	"math"
	"time"
)

// Recorder is the sample-recording surface shared by Summary and Sketch.
// Code that only records values and reads summary statistics (the fleet's
// per-function latency accounting) is written against Recorder, so the
// exact, sample-retaining Summary serves small-N experiment paths and the
// bounded-memory Sketch serves million-request simulations, chosen by
// configuration rather than by code shape.
type Recorder interface {
	Add(v float64)
	AddDuration(d time.Duration)
	N() int
	Mean() float64
	Percentile(p float64) float64
	Median() float64
	P99() float64
	P999() float64
	Min() float64
	Max() float64
}

// Pool merges same-kind recorders into one fresh recorder — how
// per-function latency records pool into fleet-wide percentiles. Summaries
// replay their retained samples into a new Summary, in argument order, so
// exact paths answer exactly what a single summary over the concatenated
// streams would. Sketches merge losslessly into a new Sketch (all inputs
// must share one accuracy). Nil recorders are skipped; mixing concrete
// kinds panics — pooling an exact path with an approximate one would
// silently degrade the exact answer.
func Pool(rs ...Recorder) Recorder {
	var sum *Summary
	var sk *Sketch
	for _, r := range rs {
		switch x := r.(type) {
		case nil:
		case *Summary:
			if sk != nil {
				panic("metrics: pooling Summary with Sketch")
			}
			if sum == nil {
				sum = &Summary{}
			}
			for _, v := range x.samples {
				sum.Add(v)
			}
		case *Sketch:
			if sum != nil {
				panic("metrics: pooling Summary with Sketch")
			}
			if sk == nil {
				sk = NewSketch(x.alpha)
			}
			sk.Merge(x)
		default:
			panic(fmt.Sprintf("metrics: pooling unknown recorder %T", r))
		}
	}
	if sk != nil {
		return sk
	}
	if sum == nil {
		sum = &Summary{}
	}
	return sum
}

var (
	_ Recorder = (*Summary)(nil)
	_ Recorder = (*Sketch)(nil)
)

// DefaultSketchAlpha is the relative accuracy a zero-configured Sketch
// guarantees on percentile estimates.
const DefaultSketchAlpha = 0.01

// sketchMinValue is the smallest magnitude the sketch distinguishes from
// zero: samples at or below it (latencies are never negative, but zero
// happens) collapse into an exact zero bucket.
const sketchMinValue = 1e-9

// Sketch is an incremental percentile estimator over non-negative samples
// with bounded memory and a relative error guarantee — a DDSketch-style
// log-bucketed histogram. A sample v lands in bucket ceil(log_gamma(v))
// with gamma = (1+alpha)/(1-alpha), so every bucket spans at most a
// (1±alpha) relative range and Percentile answers are within alpha of an
// exact nearest-rank percentile (the contract pinned by
// TestSketchPercentileErrorBound). Count, sum, min, and max are tracked
// exactly, so N, Mean, Min, and Max are not approximations.
//
// Memory is proportional to the dynamic range of the data, not the sample
// count: latencies spanning nanoseconds to hours fit in a couple of
// thousand buckets at the default 1% accuracy. Adding a sample is
// allocation-free once the bucket span has stabilized. Sketches with equal
// accuracy merge losslessly (Merge), which is how per-function sketches
// pool into fleet-wide percentiles.
//
// The zero value is not ready to use; call NewSketch.
type Sketch struct {
	alpha   float64
	gamma   float64
	lnGamma float64

	buckets []uint64 // buckets[i] counts samples in log bucket minIdx+i
	minIdx  int      // absolute log index of buckets[0]
	zero    uint64   // samples <= sketchMinValue

	count    uint64
	sum      float64
	min, max float64
}

// NewSketch returns an empty sketch with the given relative accuracy;
// alpha outside (0, 1) selects DefaultSketchAlpha.
func NewSketch(alpha float64) *Sketch {
	if alpha <= 0 || alpha >= 1 {
		alpha = DefaultSketchAlpha
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:   alpha,
		gamma:   gamma,
		lnGamma: math.Log(gamma),
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// Alpha returns the sketch's relative accuracy guarantee.
func (s *Sketch) Alpha() float64 { return s.alpha }

// Add records one sample. Negative samples are treated as zero (the
// recorded statistics are latencies and counts, which cannot be negative).
func (s *Sketch) Add(v float64) {
	if v < 0 {
		v = 0
	}
	s.count++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if v <= sketchMinValue {
		s.zero++
		return
	}
	s.bump(int(math.Ceil(math.Log(v) / s.lnGamma)))
}

// AddDuration records a duration sample in milliseconds.
func (s *Sketch) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// bump increments the bucket at absolute log index idx, growing the bucket
// span when idx falls outside it. Growth over-allocates a little slack so a
// distribution discovering its range settles quickly into zero-allocation
// adds.
func (s *Sketch) bump(idx int) {
	if s.buckets == nil {
		s.buckets = make([]uint64, 1, 64)
		s.minIdx = idx
		s.buckets[0] = 1
		return
	}
	const slack = 16
	if idx < s.minIdx {
		shift := s.minIdx - idx
		grown := make([]uint64, len(s.buckets)+shift+slack)
		copy(grown[shift+slack:], s.buckets)
		s.buckets = grown
		s.minIdx = idx - slack
	} else if idx >= s.minIdx+len(s.buckets) {
		need := idx - s.minIdx + 1
		if need > cap(s.buckets) {
			grown := make([]uint64, need+slack)
			copy(grown, s.buckets)
			s.buckets = grown
		} else {
			s.buckets = s.buckets[:need]
		}
	}
	s.buckets[idx-s.minIdx]++
}

// N returns the number of recorded samples.
func (s *Sketch) N() int { return int(s.count) }

// Mean returns the exact arithmetic mean (0 for no samples).
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min returns the exact smallest sample (0 for no samples).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the exact largest sample (0 for no samples).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Percentile returns an estimate of the p-th percentile (0 <= p <= 100)
// under the nearest-rank convention: the returned value is within the
// sketch's relative accuracy of the sample at rank ceil(p/100 * N). The
// estimate is clamped to the exact [Min, Max], so single-sample and
// constant distributions answer exactly.
func (s *Sketch) Percentile(p float64) float64 {
	if s.count == 0 {
		return 0
	}
	if p <= 0 {
		return s.min
	}
	if p >= 100 {
		return s.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	cum := s.zero
	if cum >= rank {
		return 0
	}
	for i, c := range s.buckets {
		cum += c
		if cum >= rank {
			// Bucket idx covers (gamma^(idx-1), gamma^idx]; the midpoint
			// estimate 2*gamma^idx/(gamma+1) is within alpha of any value
			// in the bucket.
			est := 2 * math.Pow(s.gamma, float64(s.minIdx+i)) / (1 + s.gamma)
			if est < s.min {
				est = s.min
			}
			if est > s.max {
				est = s.max
			}
			return est
		}
	}
	return s.max
}

// Median returns the estimated 50th percentile.
func (s *Sketch) Median() float64 { return s.Percentile(50) }

// P99 returns the estimated 99th percentile.
func (s *Sketch) P99() float64 { return s.Percentile(99) }

// P999 returns the estimated 99.9th percentile.
func (s *Sketch) P999() float64 { return s.Percentile(99.9) }

// Merge folds other into s. Both sketches must have been created with the
// same accuracy; merging is lossless (the result is identical to having
// recorded both sample streams into one sketch).
func (s *Sketch) Merge(other *Sketch) {
	if other == nil || other.count == 0 {
		return
	}
	if s.gamma != other.gamma {
		panic("metrics: merging sketches with different accuracies")
	}
	s.count += other.count
	s.sum += other.sum
	s.zero += other.zero
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	for i, c := range other.buckets {
		if c != 0 {
			s.bump(other.minIdx + i)
			s.buckets[other.minIdx+i-s.minIdx] += c - 1 // bump added 1
		}
	}
}

// Reset returns the sketch to empty, keeping its bucket storage for reuse.
func (s *Sketch) Reset() {
	for i := range s.buckets {
		s.buckets[i] = 0
	}
	s.zero, s.count, s.sum = 0, 0, 0
	s.min, s.max = math.Inf(1), math.Inf(-1)
}
