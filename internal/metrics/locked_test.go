package metrics

import (
	"sync"
	"testing"
)

// TestLockedRecorderConcurrentAdds: many producers into one wrapped sketch,
// with a reader polling percentiles mid-stream, must neither race (the -race
// CI step runs this package) nor drop samples.
func TestLockedRecorderConcurrentAdds(t *testing.T) {
	rec := Locked(NewSketch(0.01))
	const (
		workers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				rec.Percentile(95)
				rec.Mean()
			}
		}
	}()
	var pw sync.WaitGroup
	for w := 0; w < workers; w++ {
		pw.Add(1)
		go func(w int) {
			defer pw.Done()
			for i := 0; i < perW; i++ {
				rec.Add(float64(w*perW + i))
			}
		}(w)
	}
	pw.Wait()
	close(stop)
	wg.Wait()
	if got := rec.N(); got != workers*perW {
		t.Fatalf("N = %d, want %d", got, workers*perW)
	}
	if rec.Min() != 0 || rec.Max() != float64(workers*perW-1) {
		t.Fatalf("min/max = %v/%v", rec.Min(), rec.Max())
	}
}

// TestLockedRecorderDelegates: the wrapper answers what the wrapped recorder
// answers.
func TestLockedRecorderDelegates(t *testing.T) {
	exact := NewSummary(nil)
	rec := Locked(exact)
	for i := 1; i <= 100; i++ {
		rec.Add(float64(i))
	}
	if rec.N() != 100 || rec.Mean() != 50.5 {
		t.Fatalf("N=%d mean=%v", rec.N(), rec.Mean())
	}
	if rec.Median() != exact.Median() || rec.P99() != exact.P99() {
		t.Fatal("wrapper and wrapped disagree")
	}
}
