package metrics_test

import (
	"fmt"

	"groundhog/internal/metrics"
)

// ExampleSummary shows the statistics the experiment harness reports.
func ExampleSummary() {
	var s metrics.Summary
	for _, v := range []float64{1, 2, 3, 4, 100} {
		s.Add(v)
	}
	fmt.Printf("median %.1f, p95 %.1f, mean %.1f\n", s.Median(), s.Percentile(95), s.Mean())
	// Output: median 3.0, p95 80.8, mean 22.0
}

// ExampleTable renders an aligned experiment table.
func ExampleTable() {
	t := metrics.NewTable("demo", "benchmark", "ratio")
	t.AddRow("chaos (p)", "1.00")
	t.AddRow("img-resize (n)", "1.62")
	fmt.Print(t.Render())
	// Output:
	// # demo
	// benchmark       ratio
	// --------------  -----
	// chaos (p)       1.00
	// img-resize (n)  1.62
}
