package metrics

import (
	"sync"
	"time"
)

// Locked wraps a Recorder with a mutex so concurrent producers — the
// gateway's per-request latency accounting, ghload's worker goroutines —
// can share one recorder. The simulation paths stay lock-free: they are
// single-threaded by construction, and wrapping there would only buy
// contention. Locking wraps every Recorder method, including the read side,
// so a live reporter can read percentiles while workers keep recording.
func Locked(r Recorder) Recorder {
	return &lockedRecorder{r: r}
}

type lockedRecorder struct {
	mu sync.Mutex
	r  Recorder
}

func (l *lockedRecorder) Add(v float64) {
	l.mu.Lock()
	l.r.Add(v)
	l.mu.Unlock()
}

func (l *lockedRecorder) AddDuration(d time.Duration) {
	l.mu.Lock()
	l.r.AddDuration(d)
	l.mu.Unlock()
}

func (l *lockedRecorder) N() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.N()
}

func (l *lockedRecorder) Mean() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Mean()
}

func (l *lockedRecorder) Percentile(p float64) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Percentile(p)
}

func (l *lockedRecorder) Median() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Median()
}

func (l *lockedRecorder) P99() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.P99()
}

func (l *lockedRecorder) P999() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.P999()
}

func (l *lockedRecorder) Min() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Min()
}

func (l *lockedRecorder) Max() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Max()
}
