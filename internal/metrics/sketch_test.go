package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// exactNearestRank returns the p-th percentile of samples under the
// nearest-rank convention the sketch documents: the sample at rank
// ceil(p/100 * n), 1-indexed in sorted order.
func exactNearestRank(samples []float64, p float64) float64 {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// adversarialDistributions builds the sample sets the sketch's error bound
// is pinned against: the degenerate and clustered shapes where a bucketed
// estimator goes wrong if its rank accounting is off by even one.
func adversarialDistributions() map[string][]float64 {
	rng := rand.New(rand.NewSource(7))
	d := map[string][]float64{
		"single":          {42.5},
		"single-tiny":     {3e-7},
		"single-huge":     {9.25e11},
		"pair-far-apart":  {1, 1e6},
		"all-zero":        make([]float64, 100),
		"constant":        make([]float64, 1000),
		"duplicate-heavy": nil,
		"bimodal":         nil,
		"ramp-linear":     nil,
		"ramp-geometric":  nil,
		"zero-mixed":      nil,
	}
	for i := range d["constant"] {
		d["constant"][i] = 17.25
	}
	// Duplicate-heavy: three distinct values, wildly uneven counts.
	for i := 0; i < 5000; i++ {
		d["duplicate-heavy"] = append(d["duplicate-heavy"], 2.0)
	}
	for i := 0; i < 49; i++ {
		d["duplicate-heavy"] = append(d["duplicate-heavy"], 900.0)
	}
	d["duplicate-heavy"] = append(d["duplicate-heavy"], 901.0)
	// Bimodal: warm hits near 1ms, cold starts near 1s, nothing between.
	for i := 0; i < 10000; i++ {
		if i%10 == 0 {
			d["bimodal"] = append(d["bimodal"], 1000+rng.Float64()*50)
		} else {
			d["bimodal"] = append(d["bimodal"], 1+rng.Float64()*0.2)
		}
	}
	// Linear ramp: every value distinct, uniform spacing.
	for i := 1; i <= 20000; i++ {
		d["ramp-linear"] = append(d["ramp-linear"], float64(i)*0.5)
	}
	// Geometric ramp: spans nine orders of magnitude.
	for i := 0; i < 9000; i++ {
		d["ramp-geometric"] = append(d["ramp-geometric"], 1e-3*math.Pow(10, float64(i)/1000))
	}
	// Zeros interleaved with real latencies.
	for i := 0; i < 3000; i++ {
		if i%3 == 0 {
			d["zero-mixed"] = append(d["zero-mixed"], 0)
		} else {
			d["zero-mixed"] = append(d["zero-mixed"], 5+rng.Float64()*100)
		}
	}
	return d
}

// TestSketchPercentileErrorBound pins the sketch's accuracy contract: for
// every adversarial distribution and a sweep of percentiles, the sketch's
// answer is within alpha relative error of the exact nearest-rank
// percentile. Zero answers must be exactly zero (the zero bucket is exact).
func TestSketchPercentileErrorBound(t *testing.T) {
	percentiles := []float64{0, 1, 10, 25, 50, 75, 90, 95, 99, 99.9, 100}
	for _, alpha := range []float64{0.005, 0.01, 0.05} {
		for name, samples := range adversarialDistributions() {
			sk := NewSketch(alpha)
			for _, v := range samples {
				sk.Add(v)
			}
			if sk.N() != len(samples) {
				t.Fatalf("%s: N = %d, want %d", name, sk.N(), len(samples))
			}
			for _, p := range percentiles {
				got := sk.Percentile(p)
				want := exactNearestRank(samples, p)
				if want == 0 {
					if got != 0 {
						t.Errorf("alpha=%v %s p%v: got %v, want exactly 0", alpha, name, p, got)
					}
					continue
				}
				if rel := math.Abs(got-want) / want; rel > alpha+1e-12 {
					t.Errorf("alpha=%v %s p%v: got %v, want %v (rel err %.4f > %.4f)",
						alpha, name, p, got, want, rel, alpha)
				}
			}
		}
	}
}

// TestSketchExactStats checks that count, mean, min, and max are exact, not
// bucket estimates.
func TestSketchExactStats(t *testing.T) {
	for name, samples := range adversarialDistributions() {
		sk := NewSketch(0)
		var sum float64
		min, max := math.Inf(1), math.Inf(-1)
		for _, v := range samples {
			sk.Add(v)
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if sk.Min() != min || sk.Max() != max {
			t.Errorf("%s: Min/Max = %v/%v, want %v/%v", name, sk.Min(), sk.Max(), min, max)
		}
		if got, want := sk.Mean(), sum/float64(len(samples)); math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Errorf("%s: Mean = %v, want %v", name, got, want)
		}
	}
	empty := NewSketch(0)
	if empty.N() != 0 || empty.Mean() != 0 || empty.Min() != 0 || empty.Max() != 0 || empty.Percentile(50) != 0 {
		t.Errorf("empty sketch stats not all zero: N=%d mean=%v min=%v max=%v p50=%v",
			empty.N(), empty.Mean(), empty.Min(), empty.Max(), empty.Percentile(50))
	}
}

// TestSketchMergeLossless checks that merging per-function sketches gives
// answers identical to one sketch over the concatenated stream — the
// property fleet-wide percentile pooling relies on.
func TestSketchMergeLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	whole := NewSketch(0)
	merged := NewSketch(0)
	parts := make([]*Sketch, 8)
	for i := range parts {
		parts[i] = NewSketch(0)
	}
	for i := 0; i < 50000; i++ {
		v := math.Exp(rng.NormFloat64()*2 + 3)
		if i%97 == 0 {
			v = 0
		}
		whole.Add(v)
		parts[i%len(parts)].Add(v)
	}
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.N() != whole.N() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged N/Min/Max = %d/%v/%v, want %d/%v/%v",
			merged.N(), merged.Min(), merged.Max(), whole.N(), whole.Min(), whole.Max())
	}
	for _, p := range []float64{0, 1, 25, 50, 75, 95, 99, 99.9, 100} {
		if got, want := merged.Percentile(p), whole.Percentile(p); got != want {
			t.Errorf("p%v: merged %v != whole %v", p, got, want)
		}
	}
}

// TestSketchMergeAccuracyMismatch checks the guard against merging sketches
// with different error bounds, which would silently corrupt percentiles.
func TestSketchMergeAccuracyMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging sketches with different alphas did not panic")
		}
	}()
	a, b := NewSketch(0.01), NewSketch(0.02)
	b.Add(1)
	a.Merge(b)
}

// TestSketchAddZeroAllocs pins the recording hot path at zero allocations
// once the bucket span has stabilized: the fleet engine calls Add once per
// request, a million-plus times per benchmark run.
func TestSketchAddZeroAllocs(t *testing.T) {
	sk := NewSketch(0)
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 256)
	for i := range vals {
		vals[i] = math.Exp(rng.NormFloat64() * 3)
	}
	for _, v := range vals {
		sk.Add(v) // discover the bucket span
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, v := range vals {
			sk.Add(v)
		}
		sk.AddDuration(3 * time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("Sketch.Add allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestSketchReset checks Reset empties the sketch while keeping storage.
func TestSketchReset(t *testing.T) {
	sk := NewSketch(0)
	for i := 1; i <= 100; i++ {
		sk.Add(float64(i))
	}
	sk.Reset()
	if sk.N() != 0 || sk.Percentile(50) != 0 || sk.Mean() != 0 {
		t.Fatalf("Reset left data: N=%d p50=%v mean=%v", sk.N(), sk.Percentile(50), sk.Mean())
	}
	sk.Add(7)
	if got := sk.Percentile(50); math.Abs(got-7) > 7*DefaultSketchAlpha {
		t.Fatalf("post-Reset p50 = %v, want ~7", got)
	}
}

// TestNewSummaryDoesNotMutateCaller pins the ownership contract fixed in
// this package: order statistics on a NewSummary-built summary must not
// reorder (or otherwise change) the caller's slice.
func TestNewSummaryDoesNotMutateCaller(t *testing.T) {
	caller := []float64{9, 1, 7, 3, 5}
	orig := append([]float64(nil), caller...)
	s := NewSummary(caller)
	_ = s.Percentile(50)
	_ = s.Min()
	_ = s.Max()
	_ = s.Median()
	for i := range caller {
		if caller[i] != orig[i] {
			t.Fatalf("caller slice mutated at %d: %v, want %v", i, caller, orig)
		}
	}
	if got, want := s.Percentile(50), 5.0; got != want {
		t.Fatalf("Percentile(50) = %v, want %v", got, want)
	}
	// Samples preserves insertion order too.
	s.Add(2)
	got := s.Samples()
	want := []float64{9, 1, 7, 3, 5, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Samples() = %v, want %v", got, want)
		}
	}
	if got, want := s.Min(), 1.0; got != want {
		t.Fatalf("Min after Add = %v, want %v", got, want)
	}
}
