//go:build !race

package gateway

// raceEnabled reports whether the race detector is compiled in. See
// race_enabled_test.go.
const raceEnabled = false
