package gateway

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"net/http"
	"net/url"
	"runtime"
	"testing"

	"groundhog/internal/server"
)

// The simulated invoke underneath the gateway is not allocation-free — the
// runtime model performs per-request address-space layout churn for the
// python/node profiles (~10 mallocs/request, pinned upstream by the trace
// package's own guard). The gateway's guarantee is about ITS OWN path, so
// both guards here measure differentially: per-request mallocs through the
// gateway minus per-request mallocs of the bare server Handle.Invoke on the
// same warmed deployment. The HTTP overhead budget is 2 (the X-Gh-Stats
// header value string and Header.Set's value slice); the binary path has no
// header map and budgets 0. Both get +0.5 measurement slack.

// fixedRW is a ResponseWriter that reuses one header map and discards the
// body — driving handleFn directly so the guard measures the gateway, not
// net/http's per-connection machinery.
type fixedRW struct {
	h      http.Header
	status int
}

func (w *fixedRW) Header() http.Header         { return w.h }
func (w *fixedRW) Write(p []byte) (int, error) { return len(p), nil }
func (w *fixedRW) WriteHeader(s int)           { w.status = s }

// reusableBody adapts a resettable bytes.Reader to io.ReadCloser.
type reusableBody struct{ *bytes.Reader }

func (reusableBody) Close() error { return nil }

// perRequestMallocs runs do at two window sizes after warmup and returns
// the differential mallocs per request — one-time growth (pools, sketch
// buckets) cancels out.
func perRequestMallocs(t *testing.T, do func()) float64 {
	t.Helper()
	measure := func(n int) uint64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := 0; i < n; i++ {
			do()
		}
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}
	for i := 0; i < 200; i++ {
		do()
	}
	short := measure(300)
	long := measure(900)
	return float64(long-short) / 600
}

// allocFixture returns a gateway with one warmed route and a bare-invoke
// closure for the differential baseline.
func allocFixture(t *testing.T) (*Gateway, *route, func()) {
	t.Helper()
	s := server.New()
	g := New(s, Config{})
	t.Cleanup(func() {
		_ = g.Close()
		s.Shutdown()
	})
	rt, err := g.route("get-time (p)", ghModeIdx)
	if err != nil {
		t.Fatal(err)
	}
	bare := func() {
		if _, err := rt.h.Invoke(""); err != nil {
			t.Fatal(err)
		}
	}
	return g, rt, bare
}

// TestGatewayHTTPAllocsPerRequest pins the HTTP hot path's own steady-state
// cost at <= 2 allocs/request over the bare invoke.
func TestGatewayHTTPAllocsPerRequest(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the differential malloc count is meaningless under -race")
	}
	g, _, bare := allocFixture(t)

	payload := bytes.Repeat([]byte("x"), 512)
	br := bytes.NewReader(payload)
	req := &http.Request{
		Method: http.MethodPost,
		URL:    &url.URL{Path: fnPrefix + "get-time (p)"},
		Header: http.Header{},
		Body:   reusableBody{br},
	}
	w := &fixedRW{h: http.Header{}}
	doHTTP := func() {
		br.Reset(payload)
		w.status = 0
		g.handleFn(w, req)
		if w.status != http.StatusOK {
			t.Fatalf("status %d", w.status)
		}
	}

	bareCost := perRequestMallocs(t, bare)
	httpCost := perRequestMallocs(t, doHTTP)
	overhead := httpCost - bareCost
	t.Logf("bare=%.3f http=%.3f overhead=%.3f allocs/request", bareCost, httpCost, overhead)
	if overhead > 2.5 {
		t.Errorf("HTTP gateway path adds %.3f allocs/request (bare %.3f, gateway %.3f), want <= 2",
			overhead, bareCost, httpCost)
	}
}

// TestGatewayBinaryAllocsPerRequest pins the binary hot path — cached route
// ID, empty caller, reused connection buffers — at 0 allocs/request over
// the bare invoke (client side included; it reuses its buffers too).
func TestGatewayBinaryAllocsPerRequest(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the differential malloc count is meaningless under -race")
	}
	g, rt, bare := allocFixture(t)

	client, srv := net.Pipe()
	t.Cleanup(func() { client.Close() })
	go func() { _ = g.ServeBinaryConn(srv) }()

	req := frame(opInvoke, invokePayload(rt.id, "", bytes.Repeat([]byte("x"), 512)))
	resp := make([]byte, 4096)
	doBin := func() {
		if _, err := client.Write(req); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(client, resp[:4]); err != nil {
			t.Fatal(err)
		}
		n := binary.BigEndian.Uint32(resp[:4])
		if int(n) > len(resp) {
			t.Fatalf("oversized response frame: %d", n)
		}
		if _, err := io.ReadFull(client, resp[:n]); err != nil {
			t.Fatal(err)
		}
		if resp[0] != opInvoke {
			t.Fatalf("op %d", resp[0])
		}
	}

	bareCost := perRequestMallocs(t, bare)
	binCost := perRequestMallocs(t, doBin)
	overhead := binCost - bareCost
	t.Logf("bare=%.3f binary=%.3f overhead=%.3f allocs/request", bareCost, binCost, overhead)
	if overhead > 0.5 {
		t.Errorf("binary gateway path adds %.3f allocs/request (bare %.3f, gateway %.3f), want 0",
			overhead, bareCost, binCost)
	}
}
