// Package gateway is the serving data plane in front of internal/server:
// a tinyFaaS-style reverse proxy with per-deployment routing, a zero-alloc
// hot invoke path, and bounded admission queues.
//
// The control plane (internal/server's /invoke) answers JSON and is priced
// for humans; this package is priced for traffic. Three design rules hold
// on the hot path:
//
//   - No per-request JSON. POST /fn/<name> takes the raw request body,
//     returns the raw body (the simulated functions produce no payload of
//     their own, so the data plane echoes the input — end-to-end payload
//     integrity is testable), and reports per-request metadata in one
//     response header (X-Gh-Stats: e2e_us=..;invoker_us=..;restored=0|1).
//     Isolation mode and caller principal ride request headers (X-Gh-Mode,
//     X-Gh-Caller).
//
//   - No per-request allocation from the gateway itself. Request records
//     and body buffers are pooled, the route table is read-locked and
//     keyed so lookups never build strings, and the response metadata is
//     formatted into a pooled buffer. The steady-state budget — gateway
//     plus the whole simulated invoke underneath — is pinned at
//     <= 2 allocs/request by TestGatewayHTTPAllocsPerRequest (the two are
//     the header value string and the header's value slice).
//
//   - No unbounded goroutine pileup. Each deployment has a bounded
//     admission queue (Config.QueueDepth slots covering waiting and
//     executing requests). When it is full the gateway answers 429 with a
//     Retry-After derived from the deployment's observed cold-start mean —
//     the time a scale-up would need — instead of letting requests stack
//     on the deployment lock. Queues are per-deployment, so one saturated
//     (or undeployed, or crashing) function cannot wedge its neighbors.
//
// A second listener speaks a compact length-prefixed binary protocol next
// to HTTP (binary.go) for clients that want the same invoke path without
// HTTP framing; both listeners share the routes, queues, and counters.
package gateway

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"groundhog/internal/faas"
	"groundhog/internal/isolation"
	"groundhog/internal/metrics"
	"groundhog/internal/server"
)

// fnPrefix is the data-plane route prefix: POST /fn/<name> invokes the
// catalog function <name> (URL-escaped; names contain spaces) under the
// isolation mode named by the X-Gh-Mode header (default gh).
const fnPrefix = "/fn/"

// Config parameterizes a Gateway. The zero value selects the defaults.
type Config struct {
	// QueueDepth bounds each deployment's admission queue: the number of
	// requests admitted (waiting or executing) before the gateway sheds
	// load with 429 + Retry-After. This is the policy's scale headroom —
	// requests a single-container deployment can have in flight while a
	// scale-up would still beat the retry. 0 selects DefaultQueueDepth.
	QueueDepth int
	// MaxBody caps the request body (HTTP) and frame payload (binary) in
	// bytes; 0 selects DefaultMaxBody.
	MaxBody int
}

// DefaultQueueDepth is the per-deployment admission bound.
const DefaultQueueDepth = 32

// DefaultMaxBody caps request bodies at 1 MiB.
const DefaultMaxBody = 1 << 20

// Stats is a point-in-time snapshot of the gateway's serving counters,
// summed over both listeners.
type Stats struct {
	// Served counts requests answered 200 (or the binary OK frame).
	Served uint64
	// Rejected counts admissions shed with 429 / queue-full frames.
	Rejected uint64
	// Transient counts invokes that failed transiently (503 frames):
	// injected crashes, exhausted cold-start retries.
	Transient uint64
	// E2EP50Ms/E2EP95Ms/E2EP99Ms summarize served requests' simulated E2E
	// latency (sketch-backed, 1% relative accuracy).
	E2EP50Ms, E2EP95Ms, E2EP99Ms float64
}

// Gateway fronts a server.Server's deployments for both listeners. Create
// with New; a Gateway must not be copied.
type Gateway struct {
	srv     *server.Server
	cfg     Config
	control http.Handler

	mu     sync.RWMutex
	routes map[string]*routeSet
	byID   []*route

	served    atomic.Uint64
	rejected  atomic.Uint64
	transient atomic.Uint64
	e2e       metrics.Recorder // Locked sketch; Add is allocation-free

	closed atomic.Bool
	connMu sync.Mutex
	conns  map[io.Closer]struct{}

	// testHookAdmitted, when armed (atomic.Value of func(*route)), runs
	// after a request is admitted to a queue slot and before the invoke —
	// the backpressure tests park requests here to fill queues
	// deterministically.
	testHookAdmitted atomic.Value
}

// routeSet is one function's routes across isolation modes, indexed by
// position in isolation.Modes so the hot path never concatenates a map key.
type routeSet struct {
	byMode [len5]*route
}

// len5 pins the mode-index array to the isolation mode count; the
// compile-time use in routeSet keeps the two in sync via init below.
const len5 = 5

func init() {
	if len(isolation.Modes) != len5 {
		panic("gateway: isolation.Modes changed size; update routeSet")
	}
}

// route is one fn × mode deployment's data-plane state.
type route struct {
	name    string
	mode    isolation.Mode
	modeIdx int
	id      uint32
	h       *server.Handle

	// slots is the admission queue: buffered to QueueDepth, one slot held
	// from admission until the invoke completes (not until the response is
	// written — a slow client never holds admission capacity).
	slots chan struct{}

	// retrySecs is the cached Retry-After the 429 path answers, refreshed
	// after each served request from the deployment's observed cold-start
	// mean. The shed path must never touch the deployment lock — a wedged
	// deployment still sheds load instantly.
	retrySecs atomic.Int64
}

// retryAfter renders the route's current Retry-After seconds.
func (rt *route) retryAfter() string {
	return strconv.FormatInt(rt.retrySecs.Load(), 10)
}

// updateRetry re-derives Retry-After from the deployment's cold-start mean:
// the honest wait is the time a scale-up would take, never below one
// second.
func (rt *route) updateRetry() {
	ms := rt.h.ColdStartMeanMs()
	if ms <= 0 {
		return
	}
	secs := int64(math.Ceil(ms / 1000))
	if secs < 1 {
		secs = 1
	}
	rt.retrySecs.Store(secs)
}

// New returns a gateway over s.
func New(s *server.Server, cfg Config) *Gateway {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	return &Gateway{
		srv:     s,
		cfg:     cfg,
		control: s.Handler(),
		routes:  make(map[string]*routeSet),
		e2e:     metrics.Locked(metrics.NewSketch(metrics.DefaultSketchAlpha)),
		conns:   make(map[io.Closer]struct{}),
	}
}

// ServeHTTP implements http.Handler: /fn/ is the data plane, everything
// else falls through to the server's control plane (so one listener serves
// both, tinyFaaS-style). The dispatch is a prefix test, not a mux, so
// direct drivers (the alloc guard, the bench harness) measure exactly the
// serving path.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, fnPrefix) {
		g.handleFn(w, r)
		return
	}
	g.control.ServeHTTP(w, r)
}

// Handler returns the gateway as an http.Handler (it serves both planes).
func (g *Gateway) Handler() http.Handler { return g }

// Snapshot reports the gateway's serving counters.
func (g *Gateway) Snapshot() Stats {
	st := Stats{
		Served:    g.served.Load(),
		Rejected:  g.rejected.Load(),
		Transient: g.transient.Load(),
	}
	if g.e2e.N() > 0 {
		st.E2EP50Ms = g.e2e.Median()
		st.E2EP95Ms = g.e2e.Percentile(95)
		st.E2EP99Ms = g.e2e.P99()
	}
	return st
}

// Close shuts the data plane down: binary listeners stop accepting and
// open binary connections are closed. The HTTP handler keeps answering
// (its listener belongs to the caller); invokes against a shut-down
// server.Server fail with 404 once the deployments are gone.
func (g *Gateway) Close() error {
	g.closed.Store(true)
	g.connMu.Lock()
	for c := range g.conns {
		_ = c.Close()
	}
	g.conns = make(map[io.Closer]struct{})
	g.connMu.Unlock()
	return nil
}

// ghModeIdx is the index of the default mode (gh) in isolation.Modes.
var ghModeIdx = func() int {
	for i, m := range isolation.Modes {
		if m == isolation.ModeGH {
			return i
		}
	}
	panic("gateway: ModeGH missing from isolation.Modes")
}()

// modeIndex maps an X-Gh-Mode header value to its isolation.Modes index
// without allocating; empty selects gh, unknown returns -1.
func modeIndex(s string) int {
	if s == "" {
		return ghModeIdx
	}
	for i, m := range isolation.Modes {
		if string(m) == s {
			return i
		}
	}
	return -1
}

// job is the pooled per-request record: the body buffer and the header
// scratch survive across requests so the steady-state handler allocates
// neither.
type job struct {
	body []byte
	hdr  []byte
}

var jobPool = sync.Pool{New: func() any { return &job{} }}

// readAll reads r fully into buf (reusing its capacity), failing once the
// body exceeds max.
func readAll(r io.Reader, buf []byte, max int) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			if len(buf) >= max {
				return buf, errBodyTooLarge
			}
			grow := cap(buf)
			if grow < 512 {
				grow = 512
			}
			if cap(buf)+grow > max {
				grow = max - cap(buf)
			}
			nb := make([]byte, len(buf), cap(buf)+grow)
			copy(nb, buf)
			buf = nb
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

var errBodyTooLarge = errors.New("gateway: request body exceeds MaxBody")

// appendStats renders the X-Gh-Stats header value into b.
func appendStats(b []byte, st faas.RequestStats) []byte {
	b = append(b, "e2e_us="...)
	b = strconv.AppendInt(b, int64(st.E2E)/1000, 10)
	b = append(b, ";invoker_us="...)
	b = strconv.AppendInt(b, int64(st.Invoker)/1000, 10)
	if st.Restored {
		b = append(b, ";restored=1"...)
	} else {
		b = append(b, ";restored=0"...)
	}
	return b
}

// handleFn is the HTTP data-plane hot path.
func (g *Gateway) handleFn(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	name := r.URL.Path[len(fnPrefix):]
	if name == "" {
		http.Error(w, "missing function name: POST /fn/<name>", http.StatusNotFound)
		return
	}
	mi := modeIndex(r.Header.Get("X-Gh-Mode"))
	if mi < 0 {
		http.Error(w, fmt.Sprintf("unknown mode %q", r.Header.Get("X-Gh-Mode")),
			http.StatusBadRequest)
		return
	}
	rt, err := g.route(name, mi)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}

	// Admission: one bounded slot per request, held from here until the
	// invoke completes. A full queue sheds immediately — no goroutine ever
	// waits on a deployment it was not admitted to.
	select {
	case rt.slots <- struct{}{}:
	default:
		g.rejected.Add(1)
		w.Header().Set("Retry-After", rt.retryAfter())
		http.Error(w, "deployment queue full", http.StatusTooManyRequests)
		return
	}
	if hook := g.testHookAdmitted.Load(); hook != nil {
		hook.(func(*route))(rt)
	}

	j := jobPool.Get().(*job)
	j.body, err = readAll(r.Body, j.body[:0], g.cfg.MaxBody)
	if err != nil {
		<-rt.slots
		jobPool.Put(j)
		status := http.StatusBadRequest
		if errors.Is(err, errBodyTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}

	st, err := rt.h.Invoke(r.Header.Get("X-Gh-Caller"))
	<-rt.slots
	if err != nil {
		jobPool.Put(j)
		g.failInvoke(w, rt, err)
		return
	}
	rt.updateRetry()
	g.served.Add(1)
	g.e2e.Add(float64(st.E2E) / 1e6)

	j.hdr = appendStats(j.hdr[:0], st)
	w.Header().Set("X-Gh-Stats", string(j.hdr))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(j.body)
	jobPool.Put(j)
}

// failInvoke maps an invoke error onto the HTTP status taxonomy: gone
// deployments 404 (and the stale route is dropped so the next request
// re-registers), transient failures 503 + Retry-After, everything else 500.
func (g *Gateway) failInvoke(w http.ResponseWriter, rt *route, err error) {
	switch {
	case errors.Is(err, server.ErrGone):
		g.dropRoute(rt)
		http.Error(w, err.Error(), http.StatusNotFound)
	case faas.IsTransient(err):
		g.transient.Add(1)
		w.Header().Set("Retry-After", rt.retryAfter())
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// route returns the cached route for (name, mode index), registering it on
// first use. The fast path is a read-locked map lookup on the path slice —
// no allocation, no string building.
func (g *Gateway) route(name string, mi int) (*route, error) {
	g.mu.RLock()
	rs := g.routes[name]
	var rt *route
	if rs != nil {
		rt = rs.byMode[mi]
	}
	g.mu.RUnlock()
	if rt != nil {
		return rt, nil
	}
	return g.register(name, mi)
}

// register resolves (name, mode) against the server's registry and installs
// the route. Slow path: allocation and validation live here.
func (g *Gateway) register(name string, mi int) (*route, error) {
	mode := isolation.Modes[mi]
	h, err := g.srv.DataPlane(name, mode)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	rs := g.routes[name]
	if rs == nil {
		rs = &routeSet{}
		g.routes[name] = rs
	}
	if rt := rs.byMode[mi]; rt != nil {
		return rt, nil
	}
	rt := &route{
		name:    name,
		mode:    mode,
		modeIdx: mi,
		id:      uint32(len(g.byID)),
		h:       h,
		slots:   make(chan struct{}, g.cfg.QueueDepth),
	}
	rt.retrySecs.Store(1)
	g.byID = append(g.byID, rt)
	rs.byMode[mi] = rt
	return rt, nil
}

// routeByID resolves a binary-protocol route ID.
func (g *Gateway) routeByID(id uint32) *route {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if int(id) >= len(g.byID) {
		return nil
	}
	return g.byID[id]
}

// dropRoute removes a route whose deployment is gone. The byID slot keeps
// the stale pointer (binary route IDs are never reused within a gateway's
// lifetime); its invokes keep failing with ErrGone until the client
// re-resolves.
func (g *Gateway) dropRoute(rt *route) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if rs := g.routes[rt.name]; rs != nil && rs.byMode[rt.modeIdx] == rt {
		rs.byMode[rt.modeIdx] = nil
	}
}
