package gateway

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"groundhog/internal/faults"
	"groundhog/internal/isolation"
	"groundhog/internal/server"
)

func newGateway(t *testing.T, cfg Config) (*server.Server, *Gateway) {
	t.Helper()
	s := server.New()
	g := New(s, cfg)
	t.Cleanup(func() {
		_ = g.Close()
		s.Shutdown()
	})
	return s, g
}

func serveHTTP(t *testing.T, g *Gateway) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func fnURL(base, fn string) string {
	return base + fnPrefix + url.PathEscape(fn)
}

// postFn posts body to the data plane and returns (status, echoed body,
// headers).
func postFn(t *testing.T, u, body string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Post(u, "application/octet-stream", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header
}

// waitUntil polls cond for up to 2s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

var statsRe = regexp.MustCompile(`^e2e_us=\d+;invoker_us=\d+;restored=[01]$`)

// TestGatewayEchoAndStats: the hot path echoes the request body verbatim
// and reports per-request metadata in X-Gh-Stats — no JSON anywhere.
func TestGatewayEchoAndStats(t *testing.T) {
	_, g := newGateway(t, Config{})
	ts := serveHTTP(t, g)
	u := fnURL(ts.URL, "get-time (p)")

	body := "payload-\x00\x01-binary-ok"
	status, echo, hdr := postFn(t, u, body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if echo != body {
		t.Fatalf("echo = %q, want %q", echo, body)
	}
	if st := hdr.Get("X-Gh-Stats"); !statsRe.MatchString(st) {
		t.Fatalf("X-Gh-Stats = %q, want %s", st, statsRe)
	}
	if snap := g.Snapshot(); snap.Served != 1 || snap.E2EP50Ms <= 0 {
		t.Fatalf("snapshot after one request = %+v", snap)
	}
}

// TestGatewayModeHeaderAndControlPlane: X-Gh-Mode selects the isolation
// mode (each fn × mode is its own deployment, visible on the control plane,
// which stays mounted under the same listener), and unknown modes answer
// 400 before touching the registry.
func TestGatewayModeHeaderAndControlPlane(t *testing.T) {
	_, g := newGateway(t, Config{})
	ts := serveHTTP(t, g)
	u := fnURL(ts.URL, "get-time (p)")

	for _, mode := range []string{"fork", "gh"} {
		req, _ := http.NewRequest(http.MethodPost, u, strings.NewReader("x"))
		req.Header.Set("X-Gh-Mode", mode)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mode %s: status %d", mode, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodPost, u, nil)
	req.Header.Set("X-Gh-Mode", "chroot")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown mode: status %d, want 400", resp.StatusCode)
	}

	// Control plane rides the same handler: the deployments listing shows
	// both modes of the function the data plane registered.
	cp, err := http.Get(ts.URL + "/deployments")
	if err != nil {
		t.Fatal(err)
	}
	listing, _ := io.ReadAll(cp.Body)
	cp.Body.Close()
	if cp.StatusCode != http.StatusOK ||
		!strings.Contains(string(listing), `"fork"`) || !strings.Contains(string(listing), `"gh"`) {
		t.Fatalf("/deployments through gateway = %d %s", cp.StatusCode, listing)
	}
}

// TestGatewayRejectsBadRequests: the edges of the routing surface.
func TestGatewayRejectsBadRequests(t *testing.T) {
	_, g := newGateway(t, Config{MaxBody: 1024})
	ts := serveHTTP(t, g)

	if resp, err := http.Get(fnURL(ts.URL, "get-time (p)")); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: %d, want 405", resp.StatusCode)
	}
	if status, _, _ := postFn(t, ts.URL+fnPrefix, ""); status != http.StatusNotFound {
		t.Fatalf("empty fn: %d, want 404", status)
	}
	if status, _, _ := postFn(t, fnURL(ts.URL, "no-such-fn"), ""); status != http.StatusNotFound {
		t.Fatalf("unknown fn: %d, want 404", status)
	}
	big := strings.Repeat("x", 4096)
	if status, _, _ := postFn(t, fnURL(ts.URL, "get-time (p)"), big); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413", status)
	}
	// The deployment survives the oversized request (the slot was released
	// on the error path).
	if status, _, _ := postFn(t, fnURL(ts.URL, "get-time (p)"), "ok"); status != http.StatusOK {
		t.Fatalf("after oversized body: %d, want 200", status)
	}
}

// TestGatewayConcurrentServingWithUndeploy is the serving-path race test:
// many client goroutines across three deployments while one deployment is
// concurrently undeployed. Invariants: no panic (the -race CI step runs
// this), every request gets exactly one response, every 200 echoes its own
// request body, the never-undeployed functions only ever answer 200 or 429,
// and the undeployed one only adds 404 (gone) to that set.
func TestGatewayConcurrentServingWithUndeploy(t *testing.T) {
	s, g := newGateway(t, Config{QueueDepth: 2})
	ts := serveHTTP(t, g)
	fns := []string{"get-time (p)", "version (p)", "json (p)"}
	for _, fn := range fns {
		if status, _, _ := postFn(t, fnURL(ts.URL, fn), "warm"); status != http.StatusOK {
			t.Fatalf("warmup %s: %d", fn, status)
		}
	}

	const (
		workers = 12
		perW    = 40
	)
	var wg sync.WaitGroup
	errs := make(chan string, workers*perW)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				fn := fns[(w+i)%len(fns)]
				body := fmt.Sprintf("w%d-r%d", w, i)
				resp, err := http.Post(fnURL(ts.URL, fn), "application/octet-stream", strings.NewReader(body))
				if err != nil {
					errs <- "transport: " + err.Error()
					continue
				}
				echo, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if string(echo) != body {
						errs <- fmt.Sprintf("%s: echo %q != body %q", fn, echo, body)
					}
				case http.StatusTooManyRequests:
				case http.StatusNotFound:
					if fn != fns[2] {
						errs <- fmt.Sprintf("%s: unexpected 404", fn)
					}
				default:
					errs <- fmt.Sprintf("%s: status %d", fn, resp.StatusCode)
				}
			}
		}(w)
	}
	// Concurrent undeployer: rip fns[2] out repeatedly while traffic flows.
	// The first round must find it deployed; later rounds race with the
	// gateway's re-registration, either outcome is legal.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if !s.Undeploy(fns[2], isolation.ModeGH) {
			errs <- "first undeploy found nothing deployed"
		}
		for i := 0; i < 4; i++ {
			time.Sleep(2 * time.Millisecond)
			s.Undeploy(fns[2], isolation.ModeGH)
		}
	}()
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	// The survivors kept serving throughout and traffic still flows after.
	for _, fn := range fns {
		if status, _, _ := postFn(t, fnURL(ts.URL, fn), "after"); status != http.StatusOK {
			t.Fatalf("post-race %s: %d", fn, status)
		}
	}
	if snap := g.Snapshot(); snap.Served < uint64(workers*perW)/2 {
		t.Fatalf("served only %d of %d requests", snap.Served, workers*perW)
	}
}

// parkRoute arms the admitted-hook to park requests for fn (only) until the
// returned release func runs.
func parkRoute(g *Gateway, fn string) (release func()) {
	block := make(chan struct{})
	g.testHookAdmitted.Store(func(rt *route) {
		if rt.name == fn {
			<-block
		}
	})
	var once sync.Once
	return func() { once.Do(func() { close(block) }) }
}

// TestGatewayBackpressure429AndDrain: filling a deployment's admission
// queue sheds further load with 429 + a sane Retry-After; once the queue
// drains, the same deployment answers 200 again.
func TestGatewayBackpressure429AndDrain(t *testing.T) {
	_, g := newGateway(t, Config{QueueDepth: 2})
	ts := serveHTTP(t, g)
	fn := "get-time (p)"
	u := fnURL(ts.URL, fn)
	if status, _, _ := postFn(t, u, "warm"); status != http.StatusOK {
		t.Fatal("warmup failed")
	}

	release := parkRoute(g, fn)
	defer release()
	rt, err := g.route(fn, ghModeIdx)
	if err != nil {
		t.Fatal(err)
	}
	var parked sync.WaitGroup
	for i := 0; i < 2; i++ {
		parked.Add(1)
		go func() {
			defer parked.Done()
			status, _, _ := postFn(t, u, "parked")
			if status != http.StatusOK {
				t.Errorf("parked request: status %d, want 200 after drain", status)
			}
		}()
	}
	waitUntil(t, "queue to fill", func() bool { return len(rt.slots) == 2 })

	status, body, hdr := postFn(t, u, "shed")
	if status != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429", status)
	}
	if !strings.Contains(body, "queue full") {
		t.Fatalf("429 body = %q", body)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", hdr.Get("Retry-After"))
	}
	if g.Snapshot().Rejected == 0 {
		t.Fatal("rejected counter not bumped")
	}

	release()
	parked.Wait()
	if status, _, _ := postFn(t, u, "resumed"); status != http.StatusOK {
		t.Fatalf("after drain: status %d, want 200", status)
	}
}

// TestGatewayQueueIsolation: a saturated deployment must not wedge its
// neighbors — admission queues are per-deployment.
func TestGatewayQueueIsolation(t *testing.T) {
	_, g := newGateway(t, Config{QueueDepth: 1})
	ts := serveHTTP(t, g)
	hot, cold := "get-time (p)", "version (p)"
	for _, fn := range []string{hot, cold} {
		if status, _, _ := postFn(t, fnURL(ts.URL, fn), "warm"); status != http.StatusOK {
			t.Fatalf("warmup %s failed", fn)
		}
	}

	release := parkRoute(g, hot)
	defer release()
	rt, err := g.route(hot, ghModeIdx)
	if err != nil {
		t.Fatal(err)
	}
	var parked sync.WaitGroup
	parked.Add(1)
	go func() {
		defer parked.Done()
		postFn(t, fnURL(ts.URL, hot), "parked")
	}()
	waitUntil(t, "hot queue to fill", func() bool { return len(rt.slots) == 1 })

	if status, _, _ := postFn(t, fnURL(ts.URL, hot), "shed"); status != http.StatusTooManyRequests {
		t.Fatalf("hot fn: status %d, want 429", status)
	}
	for i := 0; i < 3; i++ {
		if status, _, _ := postFn(t, fnURL(ts.URL, cold), "fine"); status != http.StatusOK {
			t.Fatalf("cold fn while hot saturated: status %d, want 200", status)
		}
	}
	release()
	parked.Wait()
}

// TestGatewayFaultInjection: the PR 6 invariants hold over real HTTP. A
// deterministic fault plan (mid-request crash on the 2nd request, restore
// fault a few requests later) is armed behind the gateway; every accepted
// request gets exactly one response — 200 with an intact echo or 503 +
// Retry-After for transient failures — and after shutdown no deployment
// leaks a single frame.
func TestGatewayFaultInjection(t *testing.T) {
	s, g := newGateway(t, Config{})
	ts := serveHTTP(t, g)
	fn := "version (p)"
	u := fnURL(ts.URL, fn)

	h, err := s.DataPlane(fn, isolation.ModeGH)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ArmFaults(faults.Plan{
		Seed: 1,
		Schedule: map[faults.Site][]uint64{
			faults.SiteRequestCrash: {2},
			faults.SiteRestore:      {5},
		},
	}); err != nil {
		t.Fatal(err)
	}

	const n = 12
	var ok, transient int
	for i := 0; i < n; i++ {
		body := fmt.Sprintf("req-%d", i)
		status, echo, hdr := postFn(t, u, body)
		switch status {
		case http.StatusOK:
			ok++
			if echo != body {
				t.Fatalf("request %d: echo %q != body %q", i, echo, body)
			}
		case http.StatusServiceUnavailable:
			transient++
			if hdr.Get("Retry-After") == "" {
				t.Fatalf("request %d: 503 without Retry-After", i)
			}
		default:
			t.Fatalf("request %d: status %d, want 200 or 503", i, status)
		}
	}
	if ok+transient != n {
		t.Fatalf("responses %d+%d != %d requests", ok, transient, n)
	}
	if transient == 0 {
		t.Fatal("scheduled crash produced no 503")
	}
	if ok < n-4 {
		t.Fatalf("only %d/%d requests served around the faults", ok, n)
	}
	snap := g.Snapshot()
	if snap.Served != uint64(ok) || snap.Transient != uint64(transient) {
		t.Fatalf("snapshot %+v, want served=%d transient=%d", snap, ok, transient)
	}

	_ = g.Close()
	if leaked := s.Shutdown(); leaked != 0 {
		t.Fatalf("shutdown leaked %d frames", leaked)
	}
}

// TestGatewayUndeployedRouteReregisters: after Undeploy, the cached route
// fails once with 404 (gone) at most, and the very next request deploys a
// fresh platform — counters restart from zero on the control plane.
func TestGatewayUndeployedRouteReregisters(t *testing.T) {
	s, g := newGateway(t, Config{})
	ts := serveHTTP(t, g)
	fn := "get-time (p)"
	u := fnURL(ts.URL, fn)
	for i := 0; i < 3; i++ {
		if status, _, _ := postFn(t, u, "x"); status != http.StatusOK {
			t.Fatal("warmup failed")
		}
	}
	if !s.Undeploy(fn, isolation.ModeGH) {
		t.Fatal("undeploy found nothing")
	}
	// The stale cached route answers gone exactly once, then the gateway
	// re-registers; sequential requests therefore see at most one 404.
	gones := 0
	for i := 0; i < 3; i++ {
		status, _, _ := postFn(t, u, "y")
		switch status {
		case http.StatusNotFound:
			gones++
		case http.StatusOK:
		default:
			t.Fatalf("status %d after undeploy", status)
		}
	}
	if gones > 1 {
		t.Fatalf("%d gone responses after a single undeploy, want <= 1", gones)
	}
	if status, _, _ := postFn(t, u, "z"); status != http.StatusOK {
		t.Fatal("route did not re-register")
	}
}
