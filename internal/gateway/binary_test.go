package gateway

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"
)

// frame wraps op+payload in the length prefix.
func frame(op byte, payload []byte) []byte {
	b := binary.BigEndian.AppendUint32(nil, uint32(1+len(payload)))
	b = append(b, op)
	return append(b, payload...)
}

func resolvePayload(mode byte, fn string) []byte {
	p := []byte{mode}
	p = binary.BigEndian.AppendUint16(p, uint16(len(fn)))
	return append(p, fn...)
}

func invokePayload(id uint32, caller string, body []byte) []byte {
	p := binary.BigEndian.AppendUint32(nil, id)
	p = append(p, byte(len(caller)))
	p = append(p, caller...)
	return append(p, body...)
}

// readFrame reads one response frame.
func readFrame(t *testing.T, r io.Reader) (op byte, payload []byte) {
	t.Helper()
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		t.Fatalf("read frame header: %v", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatalf("read frame payload: %v", err)
	}
	return buf[0], buf[1:]
}

// errFrame decodes an error frame payload.
func errFrame(t *testing.T, op byte, p []byte) (code byte, retrySecs uint16, msg string) {
	t.Helper()
	if op != opError {
		t.Fatalf("op = %d, want error frame", op)
	}
	if len(p) < 5 {
		t.Fatalf("short error payload: %d bytes", len(p))
	}
	code = p[0]
	retrySecs = binary.BigEndian.Uint16(p[1:3])
	msgLen := int(binary.BigEndian.Uint16(p[3:5]))
	if len(p) != 5+msgLen {
		t.Fatalf("error frame length mismatch")
	}
	return code, retrySecs, string(p[5:])
}

// startConn wires a net.Pipe client to a served binary connection.
func startConn(t *testing.T, g *Gateway) net.Conn {
	t.Helper()
	client, srv := net.Pipe()
	go func() { _ = g.ServeBinaryConn(srv) }()
	t.Cleanup(func() { client.Close() })
	return client
}

// resolveID performs a resolve roundtrip and returns the route ID.
func resolveID(t *testing.T, c net.Conn, mode byte, fn string) uint32 {
	t.Helper()
	if _, err := c.Write(frame(opResolve, resolvePayload(mode, fn))); err != nil {
		t.Fatal(err)
	}
	op, p := readFrame(t, c)
	if op != opResolve || len(p) != 4 {
		code, _, msg := errFrame(t, op, p)
		t.Fatalf("resolve %q: error code %d: %s", fn, code, msg)
	}
	return binary.BigEndian.Uint32(p)
}

// TestBinaryResolveInvokeRoundtrip: the happy path — resolve a function to
// a route ID, invoke it with a caller and body, get timings + the echoed
// body back; re-resolving yields the same ID (routes are cached).
func TestBinaryResolveInvokeRoundtrip(t *testing.T) {
	_, g := newGateway(t, Config{})
	c := startConn(t, g)

	id := resolveID(t, c, modeDefault, "get-time (p)")
	if again := resolveID(t, c, modeDefault, "get-time (p)"); again != id {
		t.Fatalf("re-resolve: id %d != %d", again, id)
	}

	body := []byte("hello, binary plane")
	if _, err := c.Write(frame(opInvoke, invokePayload(id, "alice", body))); err != nil {
		t.Fatal(err)
	}
	op, p := readFrame(t, c)
	if op != opInvoke {
		code, _, msg := errFrame(t, op, p)
		t.Fatalf("invoke: error code %d: %s", code, msg)
	}
	if len(p) < 17 {
		t.Fatalf("invoke response too short: %d bytes", len(p))
	}
	e2eUs := binary.BigEndian.Uint64(p[:8])
	invokerUs := binary.BigEndian.Uint64(p[8:16])
	if e2eUs == 0 || invokerUs == 0 || invokerUs > e2eUs {
		t.Fatalf("timings e2e=%dus invoker=%dus", e2eUs, invokerUs)
	}
	if string(p[17:]) != string(body) {
		t.Fatalf("echo = %q, want %q", p[17:], body)
	}
	if snap := g.Snapshot(); snap.Served != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestBinarySemanticErrorsSurvive: frames that parse but fail semantically
// answer an error frame and the connection keeps serving.
func TestBinarySemanticErrorsSurvive(t *testing.T) {
	_, g := newGateway(t, Config{})
	c := startConn(t, g)

	cases := []struct {
		name string
		f    []byte
		code byte
	}{
		{"unknown fn", frame(opResolve, resolvePayload(modeDefault, "no-such-fn")), CodeUnknown},
		{"unknown mode index", frame(opResolve, resolvePayload(200, "get-time (p)")), CodeUnknown},
		{"unknown route id", frame(opInvoke, invokePayload(4242, "", nil)), CodeUnknown},
		{"unknown op", frame(9, []byte("x")), CodeBadOp},
		{"short resolve", frame(opResolve, []byte{0}), CodeBadFrame},
		{"resolve length mismatch", frame(opResolve, resolvePayload(modeDefault, "get-time (p)")[:8]), CodeBadFrame},
		{"short invoke", frame(opInvoke, []byte{0, 0, 1}), CodeBadFrame},
		{"invoke caller overrun", frame(opInvoke, []byte{0, 0, 0, 0, 200, 'a'}), CodeBadFrame},
	}
	for _, tc := range cases {
		if _, err := c.Write(tc.f); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		op, p := readFrame(t, c)
		if code, _, msg := errFrame(t, op, p); code != tc.code {
			t.Fatalf("%s: code %d (%s), want %d", tc.name, code, msg, tc.code)
		}
	}
	// The same connection still serves after every malformed frame.
	id := resolveID(t, c, modeDefault, "get-time (p)")
	if _, err := c.Write(frame(opInvoke, invokePayload(id, "", []byte("still alive")))); err != nil {
		t.Fatal(err)
	}
	if op, p := readFrame(t, c); op != opInvoke || string(p[17:]) != "still alive" {
		t.Fatalf("post-garbage invoke: op=%d payload=%q", op, p)
	}
}

// TestBinaryBadLengthCloses: a broken length prefix poisons the stream
// offset — the gateway answers CodeBadFrame and closes the connection.
func TestBinaryBadLengthCloses(t *testing.T) {
	_, g := newGateway(t, Config{MaxBody: 1024})
	for name, raw := range map[string][]byte{
		"zero length":      binary.BigEndian.AppendUint32(nil, 0),
		"oversized length": binary.BigEndian.AppendUint32(nil, uint32(1024+frameOverhead+1)),
	} {
		c := startConn(t, g)
		if _, err := c.Write(raw); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		op, p := readFrame(t, c)
		if code, _, _ := errFrame(t, op, p); code != CodeBadFrame {
			t.Fatalf("%s: code %d, want %d", name, code, CodeBadFrame)
		}
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		var one [1]byte
		if _, err := c.Read(one[:]); !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrClosedPipe) {
			t.Fatalf("%s: connection still open after bad length (read err %v)", name, err)
		}
	}
}

// TestBinaryQueueFullFrame: admission control speaks the binary protocol
// too — a full deployment queue answers CodeQueueFull with the same
// Retry-After the HTTP plane would send.
func TestBinaryQueueFullFrame(t *testing.T) {
	_, g := newGateway(t, Config{QueueDepth: 1})
	c1 := startConn(t, g)
	c2 := startConn(t, g)
	fn := "get-time (p)"
	id := resolveID(t, c1, modeDefault, fn)

	// Warm through c1 so the parked request below isn't the cold start.
	if _, err := c1.Write(frame(opInvoke, invokePayload(id, "", nil))); err != nil {
		t.Fatal(err)
	}
	if op, _ := readFrame(t, c1); op != opInvoke {
		t.Fatal("warmup invoke failed")
	}

	release := parkRoute(g, fn)
	defer release()
	rt, err := g.route(fn, ghModeIdx)
	if err != nil {
		t.Fatal(err)
	}
	var parked sync.WaitGroup
	parked.Add(1)
	go func() {
		defer parked.Done()
		c1.Write(frame(opInvoke, invokePayload(id, "", nil)))
		readFrame(t, c1)
	}()
	waitUntil(t, "slot held", func() bool { return len(rt.slots) == 1 })

	if _, err := c2.Write(frame(opInvoke, invokePayload(id, "", nil))); err != nil {
		t.Fatal(err)
	}
	op, p := readFrame(t, c2)
	code, retry, _ := errFrame(t, op, p)
	if code != CodeQueueFull || retry < 1 {
		t.Fatalf("code=%d retry=%d, want CodeQueueFull with retry >= 1", code, retry)
	}

	release()
	parked.Wait()
	if _, err := c2.Write(frame(opInvoke, invokePayload(id, "", nil))); err != nil {
		t.Fatal(err)
	}
	if op, _ := readFrame(t, c2); op != opInvoke {
		t.Fatal("invoke after drain failed")
	}
}

// TestBinarySlowConsumerDoesNotWedgeHTTP: a binary client that stops
// reading blocks only its own connection's response write — the admission
// slot is released before the write, so HTTP traffic to the same
// deployment keeps flowing.
func TestBinarySlowConsumerDoesNotWedgeHTTP(t *testing.T) {
	_, g := newGateway(t, Config{QueueDepth: 2})
	ts := serveHTTP(t, g)
	c := startConn(t, g)
	fn := "get-time (p)"
	id := resolveID(t, c, modeDefault, fn)

	// Fire an invoke with a fat body and do NOT read the response: the
	// serving goroutine finishes the invoke, releases its slot, and parks
	// in the response write (net.Pipe is unbuffered).
	big := make([]byte, 8192)
	for i := range big {
		big[i] = byte(i)
	}
	go func() { c.Write(frame(opInvoke, invokePayload(id, "", big))) }()
	waitUntil(t, "binary invoke to complete", func() bool { return g.Snapshot().Served >= 1 })

	for i := 0; i < 5; i++ {
		if status, _, _ := postFn(t, fnURL(ts.URL, fn), "http while binary stalls"); status != http.StatusOK {
			t.Fatalf("http request %d: status %d, want 200", i, status)
		}
	}

	// Finally drain the stalled response: intact echo, nothing corrupted.
	op, p := readFrame(t, c)
	if op != opInvoke || string(p[17:]) != string(big) {
		t.Fatalf("stalled response corrupt: op=%d len=%d", op, len(p))
	}
}

// TestBinaryOverTCPAndClose: ServeBinary on a real listener serves dialed
// connections, and Close unblocks both the accept loop and open
// connections.
func TestBinaryOverTCPAndClose(t *testing.T) {
	_, g := newGateway(t, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.ServeBinary(ln) }()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := resolveID(t, c, modeDefault, "version (p)")
	if _, err := c.Write(frame(opInvoke, invokePayload(id, "tcp-client", []byte("over tcp")))); err != nil {
		t.Fatal(err)
	}
	if op, p := readFrame(t, c); op != opInvoke || string(p[17:]) != "over tcp" {
		t.Fatalf("tcp invoke: op=%d payload=%q", op, p)
	}

	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeBinary returned %v after Close", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ServeBinary did not return after Close")
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	var one [1]byte
	if _, err := c.Read(one[:]); err == nil {
		t.Fatal("connection still open after Close")
	}
}
