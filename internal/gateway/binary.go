// The binary data plane: a compact length-prefixed protocol on a second
// listener, for clients that want the gateway's invoke path without HTTP
// framing (tinyFaaS pairs its HTTP proxy with a CoAP/GRPC listener the
// same way). Both listeners share routes, admission queues, and counters.
//
// Framing (all integers big-endian):
//
//	frame    := len u32 | op u8 | payload          (len counts op+payload)
//	resolve  := op=1 | mode u8 | fnLen u16 | fn    (mode 0xFF = default gh;
//	                                                else isolation.Modes index)
//	         -> op=1 | routeID u32
//	invoke   := op=2 | routeID u32 | callerLen u8 | caller | body
//	         -> op=2 | e2eUs u64 | invokerUs u64 | flags u8 | body (echoed)
//	            flags bit0 = request served from a restored snapshot
//	error    -> op=255 | code u8 | retryAfterSecs u16 | msgLen u16 | msg
//
// Error codes and their connection fate: a frame that parses (known op,
// fields in range) but fails semantically — unknown function, dropped
// route, full queue, transient invoke failure — answers an error frame and
// the connection survives; a frame that breaks framing itself (zero or
// oversized length) answers CodeBadFrame and the connection closes, since
// the stream offset can no longer be trusted.
//
// Route IDs are per-gateway and never reused; a client holding an ID for
// an undeployed function keeps receiving CodeGone until it re-resolves.

package gateway

import (
	"encoding/binary"
	"errors"
	"io"
	"net"

	"groundhog/internal/faas"
	"groundhog/internal/isolation"
	"groundhog/internal/server"
)

// Binary protocol ops.
const (
	opResolve byte = 1
	opInvoke  byte = 2
	opError   byte = 0xFF
)

// modeDefault in a resolve frame selects the default mode (gh).
const modeDefault byte = 0xFF

// Binary protocol error codes.
const (
	CodeBadFrame  byte = 1 // framing broken; connection closes
	CodeBadOp     byte = 2 // unknown op; connection survives
	CodeUnknown   byte = 3 // unknown function/mode/routeID
	CodeQueueFull byte = 4 // admission queue full; retryAfterSecs set
	CodeTransient byte = 5 // transient invoke failure; retryAfterSecs set
	CodeGone      byte = 6 // deployment undeployed; re-resolve
	CodeInternal  byte = 7 // non-transient invoke failure
)

// frameOverhead caps a frame's non-body bytes; MaxBody+frameOverhead is the
// largest length prefix a conn accepts.
const frameOverhead = 512

// Flags bits in an invoke response.
const flagRestored byte = 1 << 0

// ServeBinary accepts connections on ln and serves the binary protocol on
// each until Close (or a listener error). Blocks; run in a goroutine.
func (g *Gateway) ServeBinary(ln net.Listener) error {
	g.connMu.Lock()
	if g.closed.Load() {
		g.connMu.Unlock()
		ln.Close()
		return nil
	}
	g.conns[ln] = struct{}{}
	g.connMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if g.closed.Load() {
				return nil
			}
			return err
		}
		go func() { _ = g.ServeBinaryConn(conn) }()
	}
}

// ServeBinaryConn serves one binary-protocol connection until EOF, a
// framing error, or gateway Close. Exported so tests and in-process clients
// can drive the protocol over net.Pipe without a listener.
func (g *Gateway) ServeBinaryConn(conn net.Conn) error {
	g.connMu.Lock()
	if g.closed.Load() {
		g.connMu.Unlock()
		conn.Close()
		return nil
	}
	g.conns[conn] = struct{}{}
	g.connMu.Unlock()
	defer func() {
		g.connMu.Lock()
		delete(g.conns, conn)
		g.connMu.Unlock()
		conn.Close()
	}()

	maxFrame := uint32(g.cfg.MaxBody + frameOverhead)
	var hdr [4]byte
	// Per-connection reused buffers: the steady-state invoke path reads
	// into rbuf, builds the response in wbuf, and allocates nothing.
	rbuf := make([]byte, 0, 4096)
	wbuf := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrame {
			// The stream offset is untrustworthy past a bogus length:
			// answer and close.
			wbuf = appendError(wbuf[:0], CodeBadFrame, 0, "bad frame length")
			_, _ = conn.Write(wbuf)
			return errors.New("gateway: bad frame length")
		}
		if cap(rbuf) < int(n) {
			rbuf = make([]byte, n)
		}
		rbuf = rbuf[:n]
		if _, err := io.ReadFull(conn, rbuf); err != nil {
			return err
		}
		switch rbuf[0] {
		case opResolve:
			wbuf = g.binResolve(wbuf[:0], rbuf[1:])
		case opInvoke:
			wbuf = g.binInvoke(wbuf[:0], rbuf[1:])
		default:
			wbuf = appendError(wbuf[:0], CodeBadOp, 0, "unknown op")
		}
		if _, err := conn.Write(wbuf); err != nil {
			return err
		}
	}
}

// appendError builds an error frame in b.
func appendError(b []byte, code byte, retrySecs uint16, msg string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(1+1+2+2+len(msg)))
	b = append(b, opError, code)
	b = binary.BigEndian.AppendUint16(b, retrySecs)
	b = binary.BigEndian.AppendUint16(b, uint16(len(msg)))
	return append(b, msg...)
}

// binResolve answers a resolve frame: fn name + mode -> route ID.
func (g *Gateway) binResolve(b, p []byte) []byte {
	if len(p) < 3 {
		return appendError(b, CodeBadFrame, 0, "short resolve payload")
	}
	mi := ghModeIdx
	if p[0] != modeDefault {
		mi = int(p[0])
		if mi >= len(isolation.Modes) {
			return appendError(b, CodeUnknown, 0, "unknown mode index")
		}
	}
	fnLen := int(binary.BigEndian.Uint16(p[1:3]))
	if len(p) != 3+fnLen {
		return appendError(b, CodeBadFrame, 0, "resolve length mismatch")
	}
	rt, err := g.route(string(p[3:]), mi)
	if err != nil {
		return appendError(b, CodeUnknown, 0, err.Error())
	}
	b = binary.BigEndian.AppendUint32(b, 1+4)
	b = append(b, opResolve)
	return binary.BigEndian.AppendUint32(b, rt.id)
}

// binInvoke answers an invoke frame — the binary hot path. With a cached
// route ID and empty caller it allocates nothing in steady state.
func (g *Gateway) binInvoke(b, p []byte) []byte {
	if len(p) < 5 {
		return appendError(b, CodeBadFrame, 0, "short invoke payload")
	}
	id := binary.BigEndian.Uint32(p[:4])
	callerLen := int(p[4])
	if len(p) < 5+callerLen {
		return appendError(b, CodeBadFrame, 0, "invoke length mismatch")
	}
	body := p[5+callerLen:]
	rt := g.routeByID(id)
	if rt == nil {
		return appendError(b, CodeUnknown, 0, "unknown route id")
	}

	select {
	case rt.slots <- struct{}{}:
	default:
		g.rejected.Add(1)
		return appendError(b, CodeQueueFull, retrySecsU16(rt), "deployment queue full")
	}
	if hook := g.testHookAdmitted.Load(); hook != nil {
		hook.(func(*route))(rt)
	}
	caller := ""
	if callerLen > 0 {
		caller = string(p[5 : 5+callerLen])
	}
	st, err := rt.h.Invoke(caller)
	<-rt.slots
	if err != nil {
		switch {
		case errors.Is(err, server.ErrGone):
			g.dropRoute(rt)
			return appendError(b, CodeGone, 0, err.Error())
		case faas.IsTransient(err):
			g.transient.Add(1)
			return appendError(b, CodeTransient, retrySecsU16(rt), err.Error())
		default:
			return appendError(b, CodeInternal, 0, err.Error())
		}
	}
	rt.updateRetry()
	g.served.Add(1)
	g.e2e.Add(float64(st.E2E) / 1e6)

	b = binary.BigEndian.AppendUint32(b, uint32(1+8+8+1+len(body)))
	b = append(b, opInvoke)
	b = binary.BigEndian.AppendUint64(b, uint64(st.E2E)/1000)
	b = binary.BigEndian.AppendUint64(b, uint64(st.Invoker)/1000)
	var flags byte
	if st.Restored {
		flags |= flagRestored
	}
	b = append(b, flags)
	return append(b, body...)
}

// retrySecsU16 clamps a route's Retry-After to the error frame's u16 field.
func retrySecsU16(rt *route) uint16 {
	s := rt.retrySecs.Load()
	if s > 65535 {
		s = 65535
	}
	return uint16(s)
}
