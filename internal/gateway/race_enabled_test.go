//go:build race

package gateway

// raceEnabled reports whether the race detector is compiled in. The
// instrumented runtime allocates on paths that are allocation-free in a
// normal build, so the differential alloc guard skips itself under -race.
const raceEnabled = true
