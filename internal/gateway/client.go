// BinaryClient: the reference client for the gateway's binary protocol.
// One goroutine per client; the client reuses its frame buffers, so the
// steady-state invoke roundtrip (cached route ID, empty caller) allocates
// nothing on the client side either — the load generator and the alloc
// bench both lean on that.

package gateway

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"groundhog/internal/isolation"
)

// ProtoError is a binary-protocol error frame surfaced as a Go error.
type ProtoError struct {
	Code           byte
	RetryAfterSecs uint16
	Msg            string
}

func (e *ProtoError) Error() string {
	return fmt.Sprintf("gateway protocol error %d: %s", e.Code, e.Msg)
}

// InvokeResult is a successful binary invoke's response. Body aliases the
// client's read buffer and is valid only until the next call.
type InvokeResult struct {
	E2EUs     uint64
	InvokerUs uint64
	Restored  bool
	Body      []byte
}

// BinaryClient speaks the binary protocol over one connection. Not safe for
// concurrent use; dial one per worker.
type BinaryClient struct {
	conn net.Conn
	rbuf []byte
	wbuf []byte
	hdr  [4]byte
	// protoErr is reused across failed calls so the error path stays
	// allocation-free too once warmed.
	protoErr ProtoError
}

// DialBinary connects a new client to a gateway's binary listener.
func DialBinary(addr string) (*BinaryClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewBinaryClient(conn), nil
}

// NewBinaryClient wraps an existing connection (e.g. one side of a
// net.Pipe served by ServeBinaryConn).
func NewBinaryClient(conn net.Conn) *BinaryClient {
	return &BinaryClient{
		conn: conn,
		rbuf: make([]byte, 0, 4096),
		wbuf: make([]byte, 0, 4096),
	}
}

// Close closes the underlying connection.
func (c *BinaryClient) Close() error { return c.conn.Close() }

// Resolve maps fn × mode to a route ID for Invoke. Mode "" selects the
// default (gh).
func (c *BinaryClient) Resolve(fn string, mode isolation.Mode) (uint32, error) {
	mi := modeDefault
	if mode != "" {
		idx := modeIndex(string(mode))
		if idx < 0 {
			return 0, fmt.Errorf("gateway: unknown mode %q", mode)
		}
		mi = byte(idx)
	}
	c.wbuf = binary.BigEndian.AppendUint32(c.wbuf[:0], uint32(1+1+2+len(fn)))
	c.wbuf = append(c.wbuf, opResolve, mi)
	c.wbuf = binary.BigEndian.AppendUint16(c.wbuf, uint16(len(fn)))
	c.wbuf = append(c.wbuf, fn...)
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return 0, err
	}
	op, p, err := c.readFrame()
	if err != nil {
		return 0, err
	}
	if op != opResolve || len(p) != 4 {
		return 0, c.frameError(op, p)
	}
	return binary.BigEndian.Uint32(p), nil
}

// Invoke runs one request against a resolved route and returns the
// response. Protocol-level failures (queue full, transient, gone) come
// back as *ProtoError.
func (c *BinaryClient) Invoke(id uint32, caller string, body []byte) (InvokeResult, error) {
	c.wbuf = binary.BigEndian.AppendUint32(c.wbuf[:0], uint32(1+4+1+len(caller)+len(body)))
	c.wbuf = append(c.wbuf, opInvoke)
	c.wbuf = binary.BigEndian.AppendUint32(c.wbuf, id)
	c.wbuf = append(c.wbuf, byte(len(caller)))
	c.wbuf = append(c.wbuf, caller...)
	c.wbuf = append(c.wbuf, body...)
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return InvokeResult{}, err
	}
	op, p, err := c.readFrame()
	if err != nil {
		return InvokeResult{}, err
	}
	if op != opInvoke || len(p) < 17 {
		return InvokeResult{}, c.frameError(op, p)
	}
	return InvokeResult{
		E2EUs:     binary.BigEndian.Uint64(p[:8]),
		InvokerUs: binary.BigEndian.Uint64(p[8:16]),
		Restored:  p[16]&flagRestored != 0,
		Body:      p[17:],
	}, nil
}

// readFrame reads one response frame into the reused buffer.
func (c *BinaryClient) readFrame() (op byte, payload []byte, err error) {
	if _, err := io.ReadFull(c.conn, c.hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(c.hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("gateway: zero-length response frame")
	}
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	c.rbuf = c.rbuf[:n]
	if _, err := io.ReadFull(c.conn, c.rbuf); err != nil {
		return 0, nil, err
	}
	return c.rbuf[0], c.rbuf[1:], nil
}

// frameError decodes an error frame (or reports a malformed one).
func (c *BinaryClient) frameError(op byte, p []byte) error {
	if op != opError || len(p) < 5 {
		return fmt.Errorf("gateway: unexpected response frame op %d (%d bytes)", op, len(p))
	}
	msgLen := int(binary.BigEndian.Uint16(p[3:5]))
	if len(p) < 5+msgLen {
		msgLen = len(p) - 5
	}
	c.protoErr = ProtoError{
		Code:           p[0],
		RetryAfterSecs: binary.BigEndian.Uint16(p[1:3]),
		Msg:            string(p[5 : 5+msgLen]),
	}
	return &c.protoErr
}
