// Command ghsnap is a snapshot/restore inspector: it builds a function
// process on the simulated kernel, takes a Groundhog snapshot, runs an
// adversarial "request" that taints memory, registers, and the layout, then
// restores and prints the per-phase cost breakdown (the single-benchmark
// equivalent of the paper's Fig. 8) plus the byte-level verification result.
//
// Usage:
//
//	ghsnap -pages 8000 -dirty 500 -threads 4
//	ghsnap -tracker uffd -no-coalesce
package main

import (
	"flag"
	"fmt"
	"os"

	"groundhog/internal/core"
	"groundhog/internal/kernel"
	"groundhog/internal/mem"
	"groundhog/internal/vm"
)

func main() {
	var (
		pages    = flag.Int("pages", 8000, "resident heap pages in the warm image")
		dirty    = flag.Int("dirty", 400, "pages the request writes")
		threads  = flag.Int("threads", 2, "threads in the function process")
		tracker  = flag.String("tracker", "soft-dirty", "write tracker: soft-dirty or uffd")
		store    = flag.String("store", "copy", "state store: copy (eager) or cow (§5.5)")
		noCoal   = flag.Bool("no-coalesce", false, "disable restore copy coalescing")
		churnOps = flag.Int("churn", 3, "mmap/munmap region cycles the request performs")
	)
	flag.Parse()
	if err := run(*pages, *dirty, *threads, *tracker, *store, !*noCoal, *churnOps); err != nil {
		fmt.Fprintf(os.Stderr, "ghsnap: %v\n", err)
		os.Exit(1)
	}
}

func run(pages, dirty, threads int, tracker, store string, coalesce bool, churnOps int) error {
	opts := core.Options{Coalesce: coalesce}
	switch tracker {
	case "soft-dirty":
		opts.Tracker = core.TrackSoftDirty
	case "uffd":
		opts.Tracker = core.TrackUffd
	default:
		return fmt.Errorf("unknown tracker %q", tracker)
	}
	switch store {
	case "copy":
		opts.Store = core.StoreCopy
	case "cow":
		opts.Store = core.StoreCoW
	default:
		return fmt.Errorf("unknown store %q", store)
	}

	k := kernel.New(kernel.Default())
	p, err := k.Spawn(kernel.ExecSpec{TextPages: 64, DataPages: 16, Threads: threads})
	if err != nil {
		return err
	}
	heap := p.AS.HeapBase()
	if _, err := p.AS.Brk(heap + vm.Addr(pages*mem.PageSize)); err != nil {
		return err
	}
	for i := 0; i < pages; i++ {
		// Warm, non-zero contents: the state store has real bytes to
		// preserve.
		p.AS.WriteWord(heap+vm.Addr(i*mem.PageSize), 0xC0FFEE00+uint64(i))
	}

	mgr, err := core.NewManager(k, p, opts)
	if err != nil {
		return err
	}
	snap, err := mgr.TakeSnapshot()
	if err != nil {
		return err
	}
	fmt.Printf("snapshot: %d pages, %d regions, %v (one-time, at container init)\n",
		snap.Pages, snap.VMAs, snap.Duration)

	// The adversarial request.
	for i := 0; i < dirty; i++ {
		p.AS.WriteWord(heap+vm.Addr(i*mem.PageSize)+64, 0x5EC4E7)
	}
	for i := 0; i < churnOps; i++ {
		a, err := p.AS.Mmap(32*mem.PageSize, vm.ProtRW, vm.KindAnon, fmt.Sprintf("scratch%d", i))
		if err != nil {
			return err
		}
		p.AS.WriteWord(a, uint64(i))
	}
	if _, err := p.AS.Brk(heap + vm.Addr((pages+128)*mem.PageSize)); err != nil {
		return err
	}
	for _, th := range p.Threads {
		th.Regs.GP[7] = 0xBADC0DE
	}

	st, err := mgr.Restore()
	if err != nil {
		return err
	}
	fmt.Printf("\nrestore: %v total — %d/%d pages dirty, %d restored, %d dropped, %d layout syscalls\n",
		st.Total, st.DirtyPages, st.MappedPages, st.RestoredPages, st.DroppedPages, st.LayoutOps)
	fmt.Println("\nphase breakdown (Fig. 8 legend order):")
	for i, ph := range core.Phases {
		d := st.PhaseDurations[i]
		pct := 0.0
		if st.Total > 0 {
			pct = 100 * float64(d) / float64(st.Total)
		}
		fmt.Printf("  %-26s %12v  %5.1f%%\n", ph, d, pct)
	}

	if err := mgr.Verify(); err != nil {
		return fmt.Errorf("verification FAILED: %w", err)
	}
	fmt.Println("\nverify: process state is byte-identical to the snapshot ✓")
	fmt.Printf("state store (%s): %.2f MB materialized\n",
		store, float64(mgr.StateStoreBytes())/(1<<20))
	return nil
}
