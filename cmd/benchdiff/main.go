// Command benchdiff is the CI benchmark-regression gate: it compares a
// freshly generated benchmark JSON summary against its committed baseline
// and exits non-zero on any allocation-count regression, >25% (by default)
// drift of a deterministic virtual cost or frame count, or a shape change.
//
// Usage:
//
//	benchdiff -baseline bench/baselines/BENCH_restore.json -current BENCH_restore.json
//	benchdiff -baseline bench/baselines/BENCH_coldstart.json -current BENCH_coldstart.json -max-drift 0.25
//	benchdiff -baseline ... -current ... -summary "$GITHUB_STEP_SUMMARY" -title cluster
//
// With -summary, a markdown table of every gated metric (baseline, current,
// delta, rule, verdict) is appended to the given file — CI points it at
// $GITHUB_STEP_SUMMARY so each run's headline numbers land on the job page,
// pass or fail.
//
// Wall-clock and allocation-byte figures are machine-dependent and ignored;
// see internal/benchdiff for the full per-field policy. To re-baseline after
// an intentional performance change, regenerate the JSON with the same
// ghbench flags CI uses and copy it over the file in bench/baselines/.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"groundhog/internal/benchdiff"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed baseline JSON (required)")
		currentPath  = flag.String("current", "", "freshly generated JSON (required)")
		maxDrift     = flag.Float64("max-drift", benchdiff.DefaultMaxDrift,
			"relative drift tolerance for virtual costs and frame counts")
		summaryPath = flag.String("summary", "",
			"append a markdown table of gated metrics to this file (e.g. $GITHUB_STEP_SUMMARY); written before a failing exit")
		title = flag.String("title", "",
			"heading for the -summary table (defaults to the current file's name)")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -current are required")
		flag.Usage()
		os.Exit(2)
	}
	baseline, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	current, err := os.ReadFile(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	violations, err := benchdiff.Compare(baseline, current, *maxDrift)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	// The summary is appended before the verdict decides the exit code, so a
	// failing gate still publishes its table to the CI job summary.
	if *summaryPath != "" {
		if *title == "" {
			*title = filepath.Base(*currentPath)
		}
		md, err := benchdiff.Summary(*title, baseline, current, *maxDrift)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: summary: %v\n", err)
			os.Exit(2)
		}
		f, err := os.OpenFile(*summaryPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err == nil {
			_, err = f.WriteString(md)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: summary: %v\n", err)
			os.Exit(2)
		}
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %s vs %s: %d violation(s)\n",
			*currentPath, *baselinePath, len(violations))
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %s matches %s\n", *currentPath, *baselinePath)
}
