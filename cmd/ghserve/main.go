// Command ghserve runs the simulated FaaS platform behind real listeners —
// a Groundhog "provider in a box" for interactive exploration and load
// testing.
//
// One HTTP listener carries both planes: the gateway's raw data plane
// under /fn/ and the JSON control plane everywhere else. A second listener
// speaks the gateway's length-prefixed binary protocol (see
// internal/gateway/binary.go for the framing).
//
//	go run ./cmd/ghserve -addr :8080 &
//	curl -s localhost:8080/functions | head
//	curl -s -X POST 'localhost:8080/invoke?fn=get-time%20(p)&mode=gh'
//	curl -s -X POST --data-binary 'payload' 'localhost:8080/fn/get-time%20(p)'
//	curl -s localhost:8080/deployments
//	go run ./cmd/ghload -url http://localhost:8080 -duration 5s
package main

import (
	"flag"
	"log"
	"net"
	"net/http"

	"groundhog/internal/gateway"
	"groundhog/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "HTTP listen address (control plane + /fn/ data plane)")
		binaryAddr = flag.String("binary-addr", "127.0.0.1:8081", "binary-protocol listen address (empty disables)")
		trust      = flag.Bool("trust-same-caller", false, "enable the §4.4 trusted-caller optimization")
		hosts      = flag.Int("hosts", server.DefaultHosts, "simulated hosts deployments are spread across")
		queueDepth = flag.Int("queue-depth", gateway.DefaultQueueDepth, "per-deployment admission queue bound")
	)
	flag.Parse()

	s := server.New()
	s.SetTrustSameCaller(*trust)
	if err := s.SetHosts(*hosts); err != nil {
		log.Fatal(err)
	}
	g := gateway.New(s, gateway.Config{QueueDepth: *queueDepth})
	if *binaryAddr != "" {
		ln, err := net.Listen("tcp", *binaryAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("ghserve: binary data plane listening on %s", ln.Addr())
		go func() {
			if err := g.ServeBinary(ln); err != nil {
				log.Fatalf("ghserve: binary listener: %v", err)
			}
		}()
	}
	log.Printf("ghserve: simulated FaaS platform listening on %s", *addr)
	log.Printf("ghserve: try  curl -s -X POST '%s/invoke?fn=get-time%%20(p)&mode=gh'", *addr)
	log.Printf("ghserve: or   curl -s -X POST --data-binary hi '%s/fn/get-time%%20(p)'", *addr)
	if err := http.ListenAndServe(*addr, g.Handler()); err != nil {
		log.Fatal(err)
	}
}
