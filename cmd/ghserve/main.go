// Command ghserve runs the simulated FaaS platform behind an HTTP endpoint —
// a Groundhog "provider in a box" for interactive exploration.
//
//	go run ./cmd/ghserve -addr :8080 &
//	curl -s localhost:8080/functions | head
//	curl -s -X POST 'localhost:8080/invoke?fn=get-time%20(p)&mode=gh'
//	curl -s -X POST 'localhost:8080/invoke?fn=get-time%20(p)&mode=base'
//	curl -s localhost:8080/deployments
package main

import (
	"flag"
	"log"
	"net/http"

	"groundhog/internal/server"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:8080", "listen address")
		trust = flag.Bool("trust-same-caller", false, "enable the §4.4 trusted-caller optimization")
		hosts = flag.Int("hosts", server.DefaultHosts, "simulated hosts deployments are spread across")
	)
	flag.Parse()

	s := server.New()
	s.SetTrustSameCaller(*trust)
	if err := s.SetHosts(*hosts); err != nil {
		log.Fatal(err)
	}
	log.Printf("ghserve: simulated FaaS platform listening on %s", *addr)
	log.Printf("ghserve: try  curl -s -X POST '%s/invoke?fn=get-time%%20(p)&mode=gh'", *addr)
	if err := http.ListenAndServe(*addr, s.Handler()); err != nil {
		log.Fatal(err)
	}
}
