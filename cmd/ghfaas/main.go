// Command ghfaas runs one benchmark function on the simulated OpenWhisk-like
// platform under a chosen isolation mode and reports latency and throughput —
// a single cell of the paper's Table 1, interactively.
//
// Usage:
//
//	ghfaas -fn "chaos (p)" -mode gh
//	ghfaas -fn "img-resize (n)" -mode base -requests 30
//	ghfaas -fn "bicg (c)" -mode fork -tput -containers 4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"groundhog/internal/catalog"
	"groundhog/internal/faas"
	"groundhog/internal/isolation"
	"groundhog/internal/kernel"
	"groundhog/internal/metrics"
)

func main() {
	var (
		fn         = flag.String("fn", "get-time (p)", `benchmark name, e.g. "chaos (p)"`)
		mode       = flag.String("mode", "gh", "isolation mode: base, gh, gh-nop, fork, faasm")
		requests   = flag.Int("requests", 20, "measured requests (latency run)")
		tput       = flag.Bool("tput", false, "run the saturation workload instead of closed-loop")
		containers = flag.Int("containers", 4, "containers for the saturation run")
		seed       = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if err := run(*fn, isolation.Mode(*mode), *requests, *tput, *containers, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "ghfaas: %v\n", err)
		os.Exit(1)
	}
}

func run(fn string, mode isolation.Mode, requests int, tput bool, containers int, seed uint64) error {
	entry, err := catalog.Lookup(fn)
	if err != nil {
		return err
	}
	prof := entry.Prof

	if tput {
		pl, err := faas.NewPlatform(kernel.Default(), prof, mode, containers, seed)
		if err != nil {
			return err
		}
		res, err := pl.RunSaturated(requests)
		if err != nil {
			return err
		}
		fmt.Printf("%s under %s: %d containers saturated\n", fn, mode, containers)
		fmt.Printf("  sustained throughput: %.2f req/s (%d requests over %v)\n",
			res.RequestsPerSec, res.Requests, res.Elapsed)
		return nil
	}

	pl, err := faas.NewPlatform(kernel.Default(), prof, mode, 1, seed)
	if err != nil {
		return err
	}
	cs := pl.Containers()[0].ColdStart()
	fmt.Printf("%s under %s\n", fn, mode)
	fmt.Printf("  cold start: env %v, runtime+data init %v, snapshot %v (total %v)\n",
		cs.EnvInstantiation.Round(time.Microsecond), cs.RuntimeInit.Round(time.Microsecond),
		cs.StrategyInit.Round(time.Microsecond), cs.Total.Round(time.Microsecond))

	stats, err := pl.RunClosedLoop(requests, 30*time.Millisecond)
	if err != nil {
		return err
	}
	var e2e, inv, restore metrics.Summary
	for _, st := range stats {
		e2e.AddDuration(st.E2E)
		inv.AddDuration(st.Invoker)
		if st.Restored {
			restore.AddDuration(st.Cleanup)
		}
	}
	fmt.Printf("  E2E latency:     mean %.2f ms (±%.2f), p95 %.2f ms\n", e2e.Mean(), e2e.Std(), e2e.Percentile(95))
	fmt.Printf("  invoker latency: mean %.2f ms (±%.2f)\n", inv.Mean(), inv.Std())
	if restore.N() > 0 {
		fmt.Printf("  restore (off critical path): mean %.2f ms over %d restores\n", restore.Mean(), restore.N())
	} else {
		fmt.Printf("  no state restoration in this mode\n")
	}
	return nil
}
