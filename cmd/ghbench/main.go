// Command ghbench regenerates the paper's tables and figures from the
// simulated testbed. Each experiment prints a text table whose rows/series
// mirror the corresponding figure; the experiments' shape criteria are
// pinned by the tests in internal/experiments.
//
// Usage:
//
//	ghbench -e fig3-left            # one experiment
//	ghbench -e all -quick           # everything, reduced scale
//	ghbench -e bench-restore        # restore hot-path microbenchmark (+JSON)
//	ghbench -list                   # enumerate experiments
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"groundhog/internal/catalog"
	"groundhog/internal/experiments"
	"groundhog/internal/metrics"
)

// experimentNames lists the runnable experiments in presentation order.
var experimentNames = []string{
	"fig1", "fig3-left", "fig3-right", "fig4", "fig5", "fig6", "fig7", "fig8",
	"table1", "table2", "table3", "headline",
	"ablation-uffd", "ablation-coalesce", "ablation-trust", "ablation-statestore",
	"ablation-timevirt", "loadsweep", "related-work", "fleet", "bench-restore",
	"bench-coldstart", "bench-fleet", "bench-policy", "bench-faults",
	"bench-fleet-xl", "bench-cluster", "bench-scenarios",
}

func main() {
	var (
		exp   = flag.String("e", "", "experiment to run (see -list), or 'all'")
		quick = flag.Bool("quick", false, "reduced scale (fast)")
		max   = flag.Int("benchmarks", 0, "limit number of catalog benchmarks (0 = all 58)")
		seed  = flag.Uint64("seed", 1, "simulation seed")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.StringVar(&restoreJSONPath, "restore-json", "BENCH_restore.json",
		"output path for the bench-restore JSON summary (empty disables)")
	flag.StringVar(&coldstartJSONPath, "coldstart-json", "BENCH_coldstart.json",
		"output path for the bench-coldstart JSON summary (empty disables)")
	flag.StringVar(&fleetJSONPath, "fleet-json", "BENCH_fleet.json",
		"output path for the bench-fleet JSON summary (empty disables)")
	flag.StringVar(&policyJSONPath, "policy-json", "BENCH_policy.json",
		"output path for the bench-policy JSON summary (empty disables)")
	flag.StringVar(&faultsJSONPath, "faults-json", "BENCH_faults.json",
		"output path for the bench-faults JSON summary (empty disables)")
	flag.StringVar(&fleetXLJSONPath, "fleet-xl-json", "BENCH_fleet_xl.json",
		"output path for the bench-fleet-xl JSON summary (empty disables)")
	flag.StringVar(&clusterJSONPath, "cluster-json", "BENCH_cluster.json",
		"output path for the bench-cluster JSON summary (empty disables)")
	flag.StringVar(&scenariosJSONPath, "scenarios-json", "BENCH_scenarios.json",
		"output path for the bench-scenarios JSON summary (empty disables)")
	flag.Parse()

	if *list {
		for _, n := range experimentNames {
			fmt.Println(n)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "ghbench: -e <experiment> required; try -list")
		os.Exit(2)
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
		cfg.MaxBenchmarks = 0 // -benchmarks controls truncation explicitly
	}
	cfg.Seed = *seed
	if *max > 0 {
		cfg.MaxBenchmarks = *max
	}

	names := []string{*exp}
	if *exp == "all" {
		names = experimentNames
	}
	if err := run(cfg, names, *quick); err != nil {
		fmt.Fprintf(os.Stderr, "ghbench: %v\n", err)
		os.Exit(1)
	}
}

// run executes the named experiments, computing the shared 58-benchmark
// dataset at most once.
func run(cfg experiments.Config, names []string, quick bool) error {
	var ds *experiments.Dataset
	dataset := func() (*experiments.Dataset, error) {
		if ds != nil {
			return ds, nil
		}
		fmt.Fprintln(os.Stderr, "ghbench: measuring all benchmarks under all configurations (one-time)...")
		var err error
		ds, err = experiments.RunFull(cfg)
		return ds, err
	}

	for _, name := range names {
		var (
			tb  *metrics.Table
			err error
		)
		switch strings.ToLower(name) {
		case "fig1":
			e, lerr := catalog.Lookup("get-time (p)")
			if lerr != nil {
				return lerr
			}
			tb, err = experiments.Fig1ColdStart(cfg, e.Prof)
		case "fig3-left":
			tb, err = experiments.Fig3Left(cfg)
		case "fig3-right":
			tb, err = experiments.Fig3Right(cfg)
		case "fig4":
			d, derr := dataset()
			if derr != nil {
				return derr
			}
			fmt.Println(experiments.Fig4E2E(d).Render())
			tb = experiments.Fig4Invoker(d)
		case "fig5":
			d, derr := dataset()
			if derr != nil {
				return derr
			}
			tb = experiments.Fig5(d)
		case "fig6":
			tb, err = experiments.Fig6(cfg)
		case "fig7":
			tb, err = experiments.Fig7(cfg)
		case "fig8":
			tb, err = experiments.Fig8(cfg)
		case "table1":
			d, derr := dataset()
			if derr != nil {
				return derr
			}
			tb = experiments.Table1(d)
		case "table2":
			d, derr := dataset()
			if derr != nil {
				return derr
			}
			tb = experiments.Table2(d)
		case "table3":
			d, derr := dataset()
			if derr != nil {
				return derr
			}
			tb = experiments.Table3(d)
		case "headline":
			d, derr := dataset()
			if derr != nil {
				return derr
			}
			tb = experiments.Headline(d)
		case "ablation-uffd":
			tb, err = experiments.AblationUFFD(cfg)
		case "ablation-coalesce":
			tb, err = experiments.AblationCoalesce(cfg)
		case "ablation-trust":
			tb, err = experiments.AblationTrust(cfg)
		case "loadsweep":
			tb, err = experiments.LoadSweep(cfg)
		case "ablation-statestore":
			tb, err = experiments.AblationStateStore(cfg)
		case "related-work":
			tb, err = experiments.RelatedWork(cfg)
		case "fleet":
			tb, err = experiments.Fleet(cfg)
		case "ablation-timevirt":
			tb, err = experiments.AblationTimeVirt(cfg)
		case "bench-restore":
			tb, err = benchRestore(cfg, quick)
		case "bench-coldstart":
			tb, err = benchColdStart(cfg)
		case "bench-fleet":
			tb, err = benchFleet(cfg, quick)
		case "bench-policy":
			tb, err = benchPolicy(cfg, quick)
		case "bench-faults":
			tb, err = benchFaults(cfg, quick)
		case "bench-fleet-xl":
			tb, err = benchFleetXL(cfg, quick)
		case "bench-cluster":
			tb, err = benchCluster(cfg, quick)
		case "bench-scenarios":
			tb, err = benchScenarios(cfg, quick)
		default:
			return fmt.Errorf("unknown experiment %q (try -list)", name)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println(tb.Render())
	}
	return nil
}

// writeBenchJSON marshals a benchmark summary to path (empty disables),
// logging the write; every bench-* experiment shares it so the artifact
// format cannot diverge.
func writeBenchJSON(path string, v any) error {
	if path == "" {
		return nil
	}
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ghbench: wrote %s\n", path)
	return nil
}

// restoreJSONPath is where benchRestore writes its machine-readable summary.
var restoreJSONPath string

// benchRestore runs the steady-state restore microbenchmark under both write
// trackers (soft-dirty and UFFD) and writes BENCH_restore.json — a JSON array
// with one entry per tracker — next to the console table, so CI and scripts
// can track both hot paths' wall time and allocation rate across commits.
func benchRestore(cfg experiments.Config, quick bool) (*metrics.Table, error) {
	heapPages, iters := 4096, 2000
	if quick {
		heapPages, iters = 1024, 500
	}
	res, err := experiments.RestoreBenchVariants(cfg, heapPages, 128, iters)
	if err != nil {
		return nil, err
	}
	if err := writeBenchJSON(restoreJSONPath, res); err != nil {
		return nil, err
	}
	return experiments.RestoreBenchTable(res...), nil
}

// coldstartJSONPath is where benchColdStart writes its summary.
var coldstartJSONPath string

// benchColdStart runs the snapshot-clone scale-out benchmark — full Fig. 1
// cold start vs. clone cold start under both StateStore kinds (§5.5), plus
// fleet memory at 1/4/16 containers — and writes BENCH_coldstart.json (one
// array entry per store) so CI can gate on cold-start cost and frame-sharing
// regressions. The sweep is deterministic virtual time, so quick mode needs
// no reduction.
func benchColdStart(cfg experiments.Config) (*metrics.Table, error) {
	tb, res, err := experiments.ColdStartScaleOut(cfg)
	if err != nil {
		return nil, err
	}
	if err := writeBenchJSON(coldstartJSONPath, res); err != nil {
		return nil, err
	}
	return tb, nil
}

// fleetJSONPath is where benchFleet writes its summary.
var fleetJSONPath string

// benchFleet runs the clone-aware fleet benchmark — the same bursty
// multi-function workload dispatched once with keep-alive-only scaling and
// once with snapshot-clone scale-out plus scale-to-zero image eviction — and
// writes BENCH_fleet.json so CI can gate on the fleet-level latency,
// cold-start-cost, and frame figures.
func benchFleet(cfg experiments.Config, quick bool) (*metrics.Table, error) {
	res, err := experiments.FleetBench(cfg, quick)
	if err != nil {
		return nil, err
	}
	if err := writeBenchJSON(fleetJSONPath, []experiments.FleetBenchResult{res}); err != nil {
		return nil, err
	}
	return experiments.FleetBenchTable(res), nil
}

// policyJSONPath is where benchPolicy writes its summary.
var policyJSONPath string

// benchPolicy runs the scheduling-policy benchmark — the same bursty
// multi-function workload dispatched once per policy (fixed-ttl, slo-aware,
// cost-min) on a clone-enabled fleet — and writes BENCH_policy.json so CI
// can gate on the cost/latency frontier: SLO misses and mean-frame drift
// both fail the gate.
func benchPolicy(cfg experiments.Config, quick bool) (*metrics.Table, error) {
	res, err := experiments.PolicyBench(cfg, quick)
	if err != nil {
		return nil, err
	}
	if err := writeBenchJSON(policyJSONPath, []experiments.PolicyBenchResult{res}); err != nil {
		return nil, err
	}
	return experiments.PolicyBenchTable(res), nil
}

// faultsJSONPath is where benchFaults writes its summary.
var faultsJSONPath string

// benchFaults runs the fault-injection benchmark — the bursty
// multi-function workload on a clone-enabled fleet with every fault seam
// armed at ~1% plus scheduled crash-wave/corruption/drain events — and
// writes BENCH_faults.json so CI can hold the recovery invariants:
// lost_requests and leaked_frames are identity-gated at zero, the retry
// backoff and latency tail drift-gated.
func benchFaults(cfg experiments.Config, quick bool) (*metrics.Table, error) {
	res, err := experiments.FaultsBench(cfg, quick)
	if err != nil {
		return nil, err
	}
	if err := writeBenchJSON(faultsJSONPath, []experiments.FaultsBenchResult{res}); err != nil {
		return nil, err
	}
	return experiments.FaultsBenchTable(res), nil
}

// fleetXLJSONPath is where benchFleetXL writes its summary.
var fleetXLJSONPath string

// benchFleetXL runs the million-request engine benchmark — 24 functions
// with bursty and diurnal arrival mixes on one sketch-backed
// clone-scale-out fleet — and writes BENCH_fleet_xl.json so CI can gate
// the engine itself: retained allocations per request (tight "allocs"
// rule), simulated requests/sec (one-sided floor), and the deterministic
// fleet outputs (identity/drift rules). quick shrinks the window for
// local smoke runs; the committed baseline uses the full window.
func benchFleetXL(cfg experiments.Config, quick bool) (*metrics.Table, error) {
	res, err := experiments.FleetXLBench(cfg, quick)
	if err != nil {
		return nil, err
	}
	if err := writeBenchJSON(fleetXLJSONPath, []experiments.FleetXLBenchResult{res}); err != nil {
		return nil, err
	}
	return experiments.FleetXLBenchTable(res), nil
}

// clusterJSONPath is where benchCluster writes its summary.
var clusterJSONPath string

// benchCluster runs the multi-host placement benchmark — the bursty
// multi-function workload on a 4-host GH cluster, once per placer
// (locality-aware, round-robin, pack-first), each under the same fault
// plan, a mid-run host failure, and a drain — and writes BENCH_cluster.json
// (one array entry per placer) so CI can hold the cluster invariants:
// lost_requests and leaked_frames identity-gated at zero, cold-start cost,
// transfer cost, latency tail, and frame counts drift-gated.
func benchCluster(cfg experiments.Config, quick bool) (*metrics.Table, error) {
	res, err := experiments.ClusterBench(cfg, quick)
	if err != nil {
		return nil, err
	}
	if err := writeBenchJSON(clusterJSONPath, res); err != nil {
		return nil, err
	}
	return experiments.ClusterBenchTable(res), nil
}

// scenariosJSONPath is where benchScenarios writes its summary.
var scenariosJSONPath string

// benchScenarios runs the workload-scenario benchmark — a staged chain with
// fan-out, stateful functions against the external state store, and one
// function under three runtime overlays, each on a clone-scale-out GH
// fleet — and writes BENCH_scenarios.json (one entry per scenario) so CI
// can hold the scenario invariants: chains_lost, lost_requests, and
// leaked_frames identity-gated at zero, the per-scenario slo_met booleans
// at identity, and the latency/cost tails drift-gated.
func benchScenarios(cfg experiments.Config, quick bool) (*metrics.Table, error) {
	res, err := experiments.ScenariosBench(cfg, quick)
	if err != nil {
		return nil, err
	}
	if err := writeBenchJSON(scenariosJSONPath, []experiments.ScenariosBenchResult{res}); err != nil {
		return nil, err
	}
	return experiments.ScenariosBenchTable(res), nil
}
