// Command ghreal validates the simulation's soft-dirty semantics against
// the running Linux kernel: it performs a miniature in-process Groundhog
// cycle (fill → snapshot → clear_refs → dirty → pagemap scan → restore →
// byte-level verify) on a real anonymous mapping, using the same /proc
// interfaces as the paper's implementation (§4.2-§4.3).
//
//	go run ./cmd/ghreal -pages 256 -dirty 16
//
// Requires a kernel built with CONFIG_MEM_SOFT_DIRTY (stock kernels v3.11+;
// note the soft-dirty accuracy bug the authors found and had fixed in
// v5.12 [32]). Reports "unsupported" otherwise.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"groundhog/internal/realcheck"
)

func main() {
	var (
		pages = flag.Int("pages", 256, "pages in the test region")
		dirty = flag.Int("dirty", 16, "pages the simulated request writes")
	)
	flag.Parse()

	writes := make([]int, 0, *dirty)
	for i := 0; i < *dirty; i++ {
		writes = append(writes, i*(*pages/max(*dirty, 1))%*pages)
	}
	res, err := realcheck.Run(*pages, writes)
	if errors.Is(err, realcheck.ErrUnsupported) {
		fmt.Printf("unsupported: %v\n", err)
		fmt.Println("(the simulated kernel in internal/vm models exactly this mechanism;")
		fmt.Println(" run on a kernel with CONFIG_MEM_SOFT_DIRTY to cross-check it)")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ghreal: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("region: %d pages; wrote %d pages after clear_refs\n", res.Pages, len(res.Written))
	fmt.Printf("kernel reported %d soft-dirty pages (superset of the write set ✓)\n", len(res.ReportedDirty))
	fmt.Printf("restored %d pages from the snapshot; byte-level verify: %v\n", res.Restored, res.Verified)
	fmt.Println("the real kernel agrees with the simulated soft-dirty semantics")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
