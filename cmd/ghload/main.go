// Command ghload drives a live Groundhog serving stack with real load and
// reports client-observed throughput and latency. By default it
// self-hosts: server + gateway + both listeners in-process on loopback,
// so one command measures the whole serving path with zero setup. Point
// it at an external ghserve with -url / -binary-addr instead.
//
//	ghload -duration 5s                       # closed loop, HTTP, self-hosted
//	ghload -transport binary -workers 16      # binary protocol
//	ghload -loop open -rate 2000 -burstiness 4
//	ghload -url http://localhost:8080 -fn 'json (p)' -mode fork
//	ghload -bench BENCH_server.json           # benchmark suite for benchdiff
//
// Exit status is nonzero when the run saw any transport error, any lost
// (unaccounted) request, leaked snapshot frames at shutdown, or zero
// successful responses — CI's smoke step leans on that contract.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"groundhog/internal/gateway"
	"groundhog/internal/isolation"
	"groundhog/internal/loadgen"
	"groundhog/internal/server"
)

func main() {
	var (
		urlFlag   = flag.String("url", "", "HTTP base URL of an external gateway (empty self-hosts in-process)")
		binFlag   = flag.String("binary-addr", "", "binary-protocol address of an external gateway (with -transport binary)")
		transport = flag.String("transport", "http", "transport: http or binary")
		loop      = flag.String("loop", "closed", "loop discipline: closed or open")
		workers   = flag.Int("workers", 8, "closed-loop concurrency")
		rate      = flag.Float64("rate", 500, "open-loop mean arrival rate per second")
		burst     = flag.Float64("burstiness", 1, "open-loop interarrival CoV (1 = Poisson)")
		duration  = flag.Duration("duration", 5*time.Second, "run length")
		fn        = flag.String("fn", "get-time (p)", "catalog function to invoke")
		mode      = flag.String("mode", "", "isolation mode (empty = server default, gh)")
		bodyBytes = flag.Int("body-bytes", 512, "request payload size (echoed and verified)")
		seed      = flag.Uint64("seed", 1, "open-loop arrival process seed")
		quiet     = flag.Bool("quiet", false, "suppress the live progress line")
		benchPath = flag.String("bench", "", "run the benchmark suite and write its JSON summary to this path (ignores load flags)")
	)
	flag.Parse()

	if *benchPath != "" {
		if err := runBench(*benchPath, *duration); err != nil {
			log.Fatalf("ghload: %v", err)
		}
		return
	}

	target, err := resolveTarget(*urlFlag, *binFlag, *transport)
	if err != nil {
		log.Fatalf("ghload: %v", err)
	}
	defer target.close()

	var dial loadgen.Dial
	switch *transport {
	case "http":
		dial = loadgen.HTTPDial(target.httpURL, *fn, isolation.Mode(*mode))
	case "binary":
		dial = loadgen.BinaryDial(target.binAddr, *fn, isolation.Mode(*mode))
	default:
		log.Fatalf("ghload: unknown -transport %q (want http or binary)", *transport)
	}

	cfg := loadgen.Config{
		Dial:       dial,
		Duration:   *duration,
		Body:       bodyOf(*bodyBytes),
		Seed:       *seed,
		Burstiness: *burst,
	}
	switch *loop {
	case "closed":
		cfg.Closed = true
		cfg.Workers = *workers
	case "open":
		cfg.Rate = *rate
	default:
		log.Fatalf("ghload: unknown -loop %q (want closed or open)", *loop)
	}
	if !*quiet {
		cfg.Report = os.Stderr
	}

	res, err := loadgen.Run(cfg)
	printResult(res)
	if err != nil {
		log.Fatalf("ghload: %v", err)
	}
	if res.OK == 0 {
		log.Fatal("ghload: zero successful requests")
	}
	if res.Lost != 0 {
		log.Fatalf("ghload: %d requests fired but never accounted", res.Lost)
	}
	if leaked := target.close(); leaked != 0 {
		log.Fatalf("ghload: shutdown leaked %d snapshot frames", leaked)
	}
}

func bodyOf(n int) []byte {
	body := make([]byte, n)
	for i := range body {
		body[i] = byte('a' + i%26)
	}
	return body
}

func printResult(res loadgen.Result) {
	fmt.Printf("requests %d  ok %d  rejected %d  transient %d  errors %d  lost %d\n",
		res.Requests, res.OK, res.Rejected, res.Transient, res.Errors, res.Lost)
	fmt.Printf("wall %.2fs  throughput %.0f ok/s  latency p50 %.2fms p95 %.2fms p99 %.2fms\n",
		res.Wall.Seconds(), res.PerSec, res.P50Ms, res.P95Ms, res.P99Ms)
}

// target is where the load goes: either an external gateway or a
// self-hosted stack whose close() tears everything down and reports
// leaked snapshot frames.
type target struct {
	httpURL string
	binAddr string
	close   func() (leakedFrames int)
}

// resolveTarget self-hosts a full serving stack on loopback unless an
// external address was given for the transport in use.
func resolveTarget(urlFlag, binFlag, transport string) (*target, error) {
	external := (transport == "http" && urlFlag != "") || (transport == "binary" && binFlag != "")
	if external {
		return &target{httpURL: urlFlag, binAddr: binFlag, close: func() int { return 0 }}, nil
	}
	stack, err := selfHost()
	if err != nil {
		return nil, err
	}
	log.Printf("ghload: self-hosted stack on %s (http) and %s (binary)", stack.httpURL, stack.binAddr)
	return stack, nil
}

// selfHost builds server + gateway + HTTP and binary listeners on
// ephemeral loopback ports.
func selfHost() (*target, error) {
	s := server.New()
	g := gateway.New(s, gateway.Config{})
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	binLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		httpLn.Close()
		return nil, err
	}
	hs := &http.Server{Handler: g.Handler()}
	go func() { _ = hs.Serve(httpLn) }()
	go func() { _ = g.ServeBinary(binLn) }()
	closed := false
	leaked := 0
	return &target{
		httpURL: "http://" + httpLn.Addr().String(),
		binAddr: binLn.Addr().String(),
		close: func() int {
			if !closed {
				closed = true
				hs.Close()
				g.Close()
				leaked = s.Shutdown()
			}
			return leaked
		},
	}, nil
}

// --- benchmark suite -----------------------------------------------------

// benchFn / benchBody are the suite's fixed workload: a representative
// small python function and a mid-size payload.
const (
	benchFn      = "get-time (p)"
	benchBody    = 512
	benchWorkers = 8
)

// serveBenchEntry is one closed-loop load measurement in
// BENCH_server.json. Leaf naming follows benchdiff's rules: per_sec is
// floor-gated, lost_requests and leaked_frames are exact invariants,
// latency/wall fields are informational.
type serveBenchEntry struct {
	Benchmark       string  `json:"benchmark"`
	Transport       string  `json:"transport"`
	Loop            string  `json:"loop"`
	Fn              string  `json:"fn"`
	Workers         int     `json:"workers"`
	BodyBytes       int     `json:"body_bytes"`
	Requests        int     `json:"requests"`
	OK              int     `json:"ok"`
	Rejected        int     `json:"rejected"`
	Transient       int     `json:"transient"`
	TransportErrors int     `json:"transport_errors"`
	LostRequests    int     `json:"lost_requests"`
	LeakedFrames    int     `json:"leaked_frames"`
	WallMs          float64 `json:"wall_ms"`
	PerSec          float64 `json:"per_sec"`
	P50Ms           float64 `json:"e2e_p50_ms"`
	P95Ms           float64 `json:"e2e_p95_ms"`
	P99Ms           float64 `json:"e2e_p99_ms"`
}

// hotpathBenchEntry commits the differential allocation profile; every
// *allocs* leaf is regression-gated by benchdiff (+0.5 allocs/request).
type hotpathBenchEntry struct {
	Benchmark      string  `json:"benchmark"`
	Fn             string  `json:"fn"`
	BodyBytes      int     `json:"body_bytes"`
	Bare           float64 `json:"bare_invoke_allocs_per_request"`
	HTTP           float64 `json:"http_allocs_per_request"`
	HTTPOverhead   float64 `json:"http_gateway_overhead_allocs_per_request"`
	Binary         float64 `json:"binary_allocs_per_request"`
	BinaryOverhead float64 `json:"binary_gateway_overhead_allocs_per_request"`
}

// runBench measures both transports closed-loop against fresh self-hosted
// stacks, profiles the hot path's allocations, and writes the three-entry
// JSON summary benchdiff gates in CI.
func runBench(path string, duration time.Duration) error {
	body := bodyOf(benchBody)

	httpEntry, err := benchServe("server-http", duration, body, func(t *target) loadgen.Dial {
		return loadgen.HTTPDial(t.httpURL, benchFn, "")
	})
	if err != nil {
		return err
	}
	binEntry, err := benchServe("server-binary", duration, body, func(t *target) loadgen.Dial {
		return loadgen.BinaryDial(t.binAddr, benchFn, "")
	})
	if err != nil {
		return err
	}
	binEntry.Transport = "binary"

	fmt.Fprintln(os.Stderr, "ghload: profiling hot-path allocations")
	allocs, err := loadgen.MeasureHotpathAllocs(benchFn, benchBody)
	if err != nil {
		return err
	}
	hotEntry := hotpathBenchEntry{
		Benchmark:      "server-hotpath",
		Fn:             benchFn,
		BodyBytes:      benchBody,
		Bare:           round2(allocs.BarePerRequest),
		HTTP:           round2(allocs.HTTPPerRequest),
		HTTPOverhead:   round2(allocs.HTTPOverhead),
		Binary:         round2(allocs.BinaryPerRequest),
		BinaryOverhead: round2(allocs.BinaryOverhead),
	}

	return writeBenchJSON(path, []any{httpEntry, binEntry, hotEntry})
}

// benchServe runs one closed-loop measurement against a fresh
// self-hosted stack.
func benchServe(name string, duration time.Duration, body []byte, dial func(*target) loadgen.Dial) (serveBenchEntry, error) {
	fmt.Fprintf(os.Stderr, "ghload: running %s (closed loop, %d workers, %s)\n", name, benchWorkers, duration)
	stack, err := selfHost()
	if err != nil {
		return serveBenchEntry{}, err
	}
	res, err := loadgen.Run(loadgen.Config{
		Dial:     dial(stack),
		Closed:   true,
		Workers:  benchWorkers,
		Duration: duration,
		Body:     body,
		Report:   os.Stderr,
	})
	leaked := stack.close()
	if err != nil {
		return serveBenchEntry{}, fmt.Errorf("%s: %w", name, err)
	}
	if res.OK == 0 {
		return serveBenchEntry{}, fmt.Errorf("%s: zero successful requests", name)
	}
	return serveBenchEntry{
		Benchmark:       name,
		Transport:       "http",
		Loop:            "closed",
		Fn:              benchFn,
		Workers:         benchWorkers,
		BodyBytes:       len(body),
		Requests:        res.Requests,
		OK:              res.OK,
		Rejected:        res.Rejected,
		Transient:       res.Transient,
		TransportErrors: res.Errors,
		LostRequests:    res.Lost,
		LeakedFrames:    leaked,
		WallMs:          round2(res.Wall.Seconds() * 1000),
		PerSec:          round2(res.PerSec),
		P50Ms:           round2(res.P50Ms),
		P95Ms:           round2(res.P95Ms),
		P99Ms:           round2(res.P99Ms),
	}, nil
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

// writeBenchJSON mirrors ghbench's output discipline: indented JSON, one
// trailing newline, a note on stderr.
func writeBenchJSON(path string, v any) error {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ghload: wrote %s\n", path)
	return nil
}
