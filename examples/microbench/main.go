// Microbench: a reduced-scale rendition of the paper's §5.2 microbenchmark
// (Fig. 3 left) — request latency of BASE / GH-NOP / GH / FORK as the
// fraction of dirtied pages grows, printed as CSV for easy plotting.
//
//	go run ./examples/microbench            # 20k mapped pages
//	go run ./examples/microbench 100000     # paper-scale 100k pages
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"groundhog/internal/experiments"
)

func main() {
	mapped := 20000
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("bad page count %q", os.Args[1])
		}
		mapped = v
	}
	cfg := experiments.Default()
	cfg.MicroMappedPages = mapped
	cfg.MicroRequests = 5

	fmt.Printf("# Fig. 3 (left) at %d mapped pages; latencies in ms\n", mapped)
	tb, err := experiments.Fig3Left(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tb.Render())
	fmt.Println("expected shape: fork > gh > gh-nop ≈ base (solid); gh+rest slope eases at high density")
}
