// Scenarios: the workload extensions beyond independent open-loop
// functions. Three scenarios run on identical clone-scale-out GH fleets:
//
//   - chain-pipeline: a three-stage function composition (ingest, a
//     two-function fan-out, aggregate) dispatched stage by stage on
//     completion, with an end-to-end SLO spanning the whole chain and a
//     per-function policy override holding the slow stage warm;
//
//   - stateful-kv: functions keeping cross-request state in an external
//     store — Groundhog's restore wipes everything in-process — paying a
//     virtual cost per get/put;
//
//   - runtime-profiles: one measured function deployed as a static
//     binary, a Python script, and a Node.js service (tinyFaaS's split),
//     the overlays scaling footprint, dirty rate, and warm-up.
//
//     go run ./examples/scenarios
package main

import (
	"fmt"
	"log"

	"groundhog/internal/benchscenario"
	"groundhog/internal/experiments"
)

func main() {
	fmt.Println("Simulating the three workload scenarios on identical GH fleets...")
	fmt.Println("(chain composition, external state, heterogeneous runtimes)")
	fmt.Println()
	res, err := experiments.ScenariosBench(experiments.Default(), false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.ScenariosBenchTable(res).Render())
	fmt.Println("Reading the table: every started chain completes all its stages")
	fmt.Println("(started == completed, lost == 0 — crashes retry the stage request,")
	fmt.Println("they never abandon the chain); the stateful fleet's latency includes")
	fmt.Println("its get/put bill while the wipe guarantee is untouched; the three")
	fmt.Println("runtime deployments of one function diverge in memory and tail only")
	fmt.Println("through their overlays.")
	fmt.Println()

	// The same chain, dissected: the per-stage functions show where the
	// chain's end-to-end time goes.
	sc, err := benchscenario.ChainPipeline(false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Chain %q stages:\n", sc.Chains[0].Name)
	for i, st := range sc.Chains[0].Stages {
		fmt.Printf("  stage %d: %v\n", i+1, st.Functions)
	}
	fmt.Printf("Chain end-to-end SLO: %.0f ms; the aggregate stage holds warm capacity\n",
		sc.Chains[0].SLOTargetMs)
	fmt.Println("via its per-function policy override (FixedTTL, 2 s keep-alive).")
}
