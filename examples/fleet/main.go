// Fleet: a provider's view of Groundhog. Six functions share one simulated
// host with dynamically scaled container pools, keep-alive reaping, and
// bursty Azure-style arrivals; the same trace runs under plain container
// reuse (BASE) and under Groundhog (GH), and then again comparing
// keep-alive-only scale-out against snapshot-clone scale-out with
// scale-to-zero image eviction.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"

	"groundhog/internal/experiments"
)

func main() {
	fmt.Println("Simulating a multi-function fleet under BASE and GH...")
	fmt.Println("(identical arrivals; the only variable is request isolation)")
	fmt.Println()
	tb, err := experiments.Fleet(experiments.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tb.Render())
	fmt.Println("Reading the table: cold starts are identical (Groundhog does not change")
	fmt.Println("scheduling); every GH request is followed by a restore; latency medians")
	fmt.Println("move by a few ms; only large-footprint Node functions queue noticeably.")
	fmt.Println()

	fmt.Println("Now the same bursty mix with clone-aware scheduling...")
	fmt.Println("(identical arrivals; the only variable is how scale-ups cold-start)")
	fmt.Println()
	res, err := experiments.FleetBench(experiments.Default(), false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.FleetBenchTable(res).Render())
	fmt.Println("Reading the table: the clone fleet serves the same requests but pays")
	fmt.Printf("%.0fx less for scale-ups (snapshot clones instead of full pipelines)\n", res.ColdStartSavingsX)
	fmt.Println("and peaks far lower on frames — clones share the warm image copy-on-write.")
	fmt.Println()

	fmt.Println("Finally, the same mix under the three scheduling policies...")
	fmt.Println("(identical arrivals; the only variable is when the fleet scales)")
	fmt.Println()
	pres, err := experiments.PolicyBench(experiments.Default(), false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.PolicyBenchTable(pres).Render())
	fmt.Println("Reading the table: fixed-ttl is the classic reaper's operating point;")
	fmt.Println("slo-aware scales to zero between bursts (clone revivals are nearly free,")
	fmt.Printf("so it meets the p95 target on %.1fx less mean memory); cost-min reaps and\n", pres.FrameSavingsX)
	fmt.Println("evicts on a rent model, ignoring latency — the frontier's third corner.")
}
