// Platform: deploy a real catalog benchmark on the simulated OpenWhisk-like
// platform under BASE, GH-NOP and GH, and compare cold start, request
// latency, restore cost, and saturated throughput — one benchmark's slice of
// the paper's evaluation.
//
//	go run ./examples/platform
//	go run ./examples/platform sentiment        # any pyperformance/FaaSProfiler name
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"groundhog/internal/catalog"
	"groundhog/internal/faas"
	"groundhog/internal/isolation"
	"groundhog/internal/kernel"
	"groundhog/internal/metrics"
)

func main() {
	name := "sentiment (p)"
	if len(os.Args) > 1 {
		name = os.Args[1] + " (p)"
	}
	entry, err := catalog.Lookup(name)
	if err != nil {
		log.Fatal(err)
	}
	prof := entry.Prof
	fmt.Printf("benchmark %s: exec %v, %d-page footprint, %d pages written/request\n\n",
		prof.DisplayName(), prof.Exec, prof.TotalPages, prof.DirtyPages)

	tab := metrics.NewTable("deployment comparison",
		"mode", "cold start", "invoker lat (ms)", "E2E lat (ms)", "restore (ms)", "tput (req/s)")
	for _, mode := range []isolation.Mode{isolation.ModeBase, isolation.ModeGHNop, isolation.ModeGH} {
		pl, err := faas.NewPlatform(kernel.Default(), prof, mode, 1, 1)
		if err != nil {
			log.Fatal(err)
		}
		cold := pl.Containers()[0].ColdStart().Total
		stats, err := pl.RunClosedLoop(15, 30*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		var inv, e2e, restore metrics.Summary
		for _, st := range stats {
			inv.AddDuration(st.Invoker)
			e2e.AddDuration(st.E2E)
			if st.Restored {
				restore.AddDuration(st.Cleanup)
			}
		}

		plT, err := faas.NewPlatform(kernel.Default(), prof, mode, 4, 2)
		if err != nil {
			log.Fatal(err)
		}
		res, err := plT.RunSaturated(8)
		if err != nil {
			log.Fatal(err)
		}

		restoreCell := "-"
		if restore.N() > 0 {
			restoreCell = fmt.Sprintf("%.2f", restore.Mean())
		}
		tab.AddRow(string(mode),
			cold.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2f", inv.Mean()),
			fmt.Sprintf("%.2f", e2e.Mean()),
			restoreCell,
			fmt.Sprintf("%.1f", res.RequestsPerSec))
	}
	fmt.Println(tab.Render())
	fmt.Println("GH adds only tracking faults on the critical path; restoration runs between requests.")
}
