// Multitenant: the paper's motivating scenario (§1). Alice and Bob call the
// same deployed function; the function (or a library it uses) has a bug that
// caches request data in a global. Under plain container reuse Bob reads
// Alice's secret; under Groundhog the rollback erases it.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"groundhog/internal/isolation"
	"groundhog/internal/kernel"
	"groundhog/internal/mem"
	"groundhog/internal/vm"
)

// buggyFunction simulates a function whose sloppy library keeps a "cache" of
// the last request in a global buffer. It returns the response payload —
// which, due to the bug, includes whatever the cache held when the request
// arrived.
func buggyFunction(proc *kernel.Process, caller string, secret uint64) (leaked uint64) {
	cache := proc.AS.HeapBase() + 3*mem.PageSize
	leaked = proc.AS.ReadWord(cache) // bug: stale data from the previous caller
	proc.AS.WriteWord(cache, secret) // bug: stores this caller's private data
	return leaked
}

func runScenario(mode isolation.Mode) (bobSees uint64) {
	k := kernel.New(kernel.Default())
	proc, err := k.Spawn(kernel.ExecSpec{TextPages: 16, DataPages: 4, Threads: 1})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := proc.AS.Brk(proc.AS.HeapBase() + 16*mem.PageSize); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		proc.AS.WriteWord(proc.AS.HeapBase()+vm.Addr(i*mem.PageSize), 0)
	}

	strat, err := isolation.New(mode, k, proc)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := strat.Init(); err != nil {
		log.Fatal(err)
	}

	// Alice's request carries her secret.
	p1, err := strat.BeginRequest(nil)
	if err != nil {
		log.Fatal(err)
	}
	buggyFunction(p1, "alice", 0xA11CE5EC4E7)
	if _, err := strat.EndRequest(); err != nil {
		log.Fatal(err)
	}

	// Bob's request arrives next, in the same container.
	p2, err := strat.BeginRequest(nil)
	if err != nil {
		log.Fatal(err)
	}
	bobSees = buggyFunction(p2, "bob", 0xB0B)
	if _, err := strat.EndRequest(); err != nil {
		log.Fatal(err)
	}
	return bobSees
}

func main() {
	fmt.Println("A buggy function caches request data in a global buffer.")
	fmt.Println("Alice invokes it with secret 0xA11CE5EC4E7; then Bob invokes it.")
	fmt.Println()
	for _, mode := range []isolation.Mode{isolation.ModeBase, isolation.ModeGH} {
		got := runScenario(mode)
		verdict := "Bob sees nothing — requests are isolated"
		if got != 0 {
			verdict = fmt.Sprintf("Bob reads Alice's secret: %#x — LEAK", got)
		}
		fmt.Printf("%-7s %s\n", mode+":", verdict)
	}
}
