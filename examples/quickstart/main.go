// Quickstart: wrap a function process with a Groundhog manager, snapshot its
// warm state, let a "request" taint memory, registers and layout, then
// restore and verify that the process is byte-identical to the snapshot.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"groundhog/internal/core"
	"groundhog/internal/kernel"
	"groundhog/internal/mem"
	"groundhog/internal/vm"
)

func main() {
	// 1. A simulated kernel and a warm, multi-threaded function process
	// (think: a Node.js runtime that has finished initializing).
	k := kernel.New(kernel.Default())
	proc, err := k.Spawn(kernel.ExecSpec{TextPages: 32, DataPages: 8, Threads: 3})
	if err != nil {
		log.Fatal(err)
	}
	heap := proc.AS.HeapBase()
	if _, err := proc.AS.Brk(heap + 64*mem.PageSize); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		proc.AS.WriteWord(heap+vm.Addr(i*mem.PageSize), 0xC0FFEE) // warm global state
	}

	// 2. Attach Groundhog and snapshot the clean state — this is what the
	// manager does right before the first real request (§4.1 of the paper).
	mgr, err := core.NewManager(k, proc, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	snap, err := mgr.TakeSnapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d pages in %v (one-time cost)\n", snap.Pages, snap.Duration)

	// 3. A request runs and leaves secrets everywhere.
	proc.AS.WriteWord(heap+5*mem.PageSize, 0x5EC4E7) // Alice's data in the heap
	scratch, _ := proc.AS.Mmap(16*mem.PageSize, vm.ProtRW, vm.KindAnon, "request-buffer")
	proc.AS.WriteWord(scratch, 0x5EC4E7) // ... and in a fresh buffer
	proc.Threads[0].Regs.GP[0] = 0x5EC4E7

	// 4. Restore between requests — off the critical path.
	st, err := mgr.Restore()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restore: %v (%d dirty pages found, %d restored, %d layout syscalls)\n",
		st.Total, st.DirtyPages, st.RestoredPages, st.LayoutOps)

	// 5. The next request can observe nothing.
	if got := proc.AS.ReadWord(heap + 5*mem.PageSize); got != 0xC0FFEE {
		log.Fatalf("leak! heap word = %#x", got)
	}
	if _, ok := proc.AS.FindVMA(scratch); ok {
		log.Fatal("leak! request buffer survived")
	}
	if err := mgr.Verify(); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("verified: process state is byte-identical to the snapshot — no data can leak")
}
