// Root benchmarks: one testing.B benchmark per table and figure of the
// paper's evaluation. Each runs the corresponding experiment at reduced
// scale (experiments.Quick) so `go test -bench=.` regenerates every result's
// structure in seconds; full-scale numbers come from `go run ./cmd/ghbench`.
package groundhog_test

import (
	"testing"

	"groundhog/internal/catalog"
	"groundhog/internal/experiments"
)

// quickCfg returns the reduced-scale configuration with a benchmark-specific
// seed so runs are independent but reproducible.
func quickCfg(seed uint64) experiments.Config {
	cfg := experiments.Quick()
	cfg.Seed = seed
	return cfg
}

// dataset memoizes the master 58-benchmark dataset at quick scale: Table 1-3
// and Figs. 4-5 all derive from the same measurement pass, as in the paper.
var dataset *experiments.Dataset

func quickDataset(b *testing.B) *experiments.Dataset {
	b.Helper()
	if dataset == nil {
		ds, err := experiments.RunFull(quickCfg(11))
		if err != nil {
			b.Fatal(err)
		}
		dataset = ds
	}
	return dataset
}

func BenchmarkFig1ColdStart(b *testing.B) {
	e, err := catalog.Lookup("get-time (p)")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1ColdStart(quickCfg(1), e.Prof); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3Left(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3Left(quickCfg(2)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3Right(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3Right(quickCfg(3)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Latency(b *testing.B) {
	ds := quickDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.Fig4E2E(ds).NumRows() == 0 || experiments.Fig4Invoker(ds).NumRows() == 0 {
			b.Fatal("empty Fig. 4")
		}
	}
}

func BenchmarkFig5Throughput(b *testing.B) {
	ds := quickDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.Fig5(ds).NumRows() == 0 {
			b.Fatal("empty Fig. 5")
		}
	}
}

func BenchmarkFig6RestorationVsFaasm(b *testing.B) {
	cfg := quickCfg(6)
	cfg.MaxBenchmarks = 4
	cfg.LatencySamples = 3
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7CoreScaling(b *testing.B) {
	cfg := quickCfg(7)
	cfg.MaxBenchmarks = 2
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8RestoreBreakdown(b *testing.B) {
	cfg := quickCfg(8)
	cfg.MaxBenchmarks = 3
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Absolute(b *testing.B) {
	ds := quickDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.Table1(ds).NumRows() == 0 {
			b.Fatal("empty Table 1")
		}
	}
}

func BenchmarkTable2RelativeOverheads(b *testing.B) {
	ds := quickDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.Table2(ds).NumRows() == 0 {
			b.Fatal("empty Table 2")
		}
	}
}

func BenchmarkTable3RestorationDetail(b *testing.B) {
	ds := quickDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.Table3(ds).NumRows() == 0 {
			b.Fatal("empty Table 3")
		}
	}
}

func BenchmarkHeadlineAggregates(b *testing.B) {
	ds := quickDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.Headline(ds).NumRows() == 0 {
			b.Fatal("empty headline")
		}
	}
}

func BenchmarkAblationUFFD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationUFFD(quickCfg(12)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCoalesce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCoalesce(quickCfg(13)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTrust(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTrust(quickCfg(14)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LoadSweep(quickCfg(15)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStateStore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationStateStore(quickCfg(16)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRelatedWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RelatedWork(quickCfg(17)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTimeVirt(b *testing.B) {
	cfg := quickCfg(19)
	cfg.MaxBenchmarks = 2
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTimeVirt(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFleet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fleet(quickCfg(18)); err != nil {
			b.Fatal(err)
		}
	}
}
