module groundhog

go 1.24
