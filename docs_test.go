// Docs checks, run by the CI docs job: every relative markdown link must
// resolve to a file in the repository, and every ```go fence must hold
// gofmt-clean Go (a whole file, or a fragment of declarations/statements).
package groundhog_test

import (
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// skippedDocs are verbatim source-material excerpts (paper abstracts,
// exemplar snippets quoted from other repositories): their links point into
// the repositories they were excerpted from, not into this one.
var skippedDocs = map[string]bool{
	"PAPER.md":    true,
	"PAPERS.md":   true,
	"SNIPPETS.md": true,
	"ISSUE.md":    true,
}

// docFiles walks the repository for its own markdown files, at any depth
// (filepath.Glob has no "**", so globbing would silently skip nested docs).
// Dot-directories (.git, .claude) are tool state, not docs.
func docFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != "." && strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".md") && !skippedDocs[name] {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found; docs check running from the wrong directory?")
	}
	return files
}

var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocsRelativeLinksResolve fails on markdown links to repository paths
// that do not exist (external URLs and intra-page anchors are skipped).
func TestDocsRelativeLinksResolve(t *testing.T) {
	for _, f := range docFiles(t) {
		blob, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(blob), -1) {
			target := m[1]
			switch {
			case strings.Contains(target, "://"), strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(filepath.Dir(f), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: link %q does not resolve (%s)", f, m[1], resolved)
			}
		}
	}
}

var goFence = regexp.MustCompile("(?s)```go\n(.*?)```")

// TestDocsGoExamplesGofmtClean extracts every ```go fence from the docs and
// checks it formats cleanly — examples in prose must hold to the same gofmt
// bar as the code they describe.
func TestDocsGoExamplesGofmtClean(t *testing.T) {
	for _, f := range docFiles(t) {
		blob, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range goFence.FindAllStringSubmatch(string(blob), -1) {
			src := m[1]
			formatted, err := format.Source([]byte(src))
			if err != nil {
				t.Errorf("%s: go example %d does not parse: %v", f, i+1, err)
				continue
			}
			if string(formatted) != src {
				t.Errorf("%s: go example %d is not gofmt-clean; want:\n%s", f, i+1, formatted)
			}
		}
	}
}
