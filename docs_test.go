// Docs checks, run by the CI docs job: every relative markdown link must
// resolve to a file in the repository, and every ```go fence must hold
// gofmt-clean Go (a whole file, or a fragment of declarations/statements).
package groundhog_test

import (
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// skippedDocs are verbatim source-material excerpts (paper abstracts,
// exemplar snippets quoted from other repositories): their links point into
// the repositories they were excerpted from, not into this one.
var skippedDocs = map[string]bool{
	"PAPER.md":    true,
	"PAPERS.md":   true,
	"SNIPPETS.md": true,
	"ISSUE.md":    true,
}

// docFiles walks the repository for its own markdown files, at any depth
// (filepath.Glob has no "**", so globbing would silently skip nested docs).
// Dot-directories (.git, .claude) are tool state, not docs.
func docFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != "." && strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".md") && !skippedDocs[name] {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found; docs check running from the wrong directory?")
	}
	return files
}

var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocsRelativeLinksResolve fails on markdown links to repository paths
// that do not exist (external URLs and intra-page anchors are skipped).
func TestDocsRelativeLinksResolve(t *testing.T) {
	for _, f := range docFiles(t) {
		blob, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(blob), -1) {
			target := m[1]
			switch {
			case strings.Contains(target, "://"), strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(filepath.Dir(f), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: link %q does not resolve (%s)", f, m[1], resolved)
			}
		}
	}
}

// benchRef matches committed-benchmark mentions; every one named in the
// reference docs must exist under bench/baselines/, so the docs can never
// describe a suite the gate does not actually pin (the drift this repo has
// shipped before: prose describing baselines that lived somewhere else).
var benchRef = regexp.MustCompile(`BENCH_[a-z_]+\.json`)

// codeSpan captures inline code; spans that name repository paths are
// checked against the tree below.
var codeSpan = regexp.MustCompile("`([^`]+)`")

// pathPrefixes are the repo-root-relative prefixes that make an inline code
// span a path claim rather than an identifier.
var pathPrefixes = []string{"internal/", "cmd/", "bench/", "examples/", ".github/"}

// TestDocsBenchReferencesResolve pins the reference docs against the tree:
// every BENCH_*.json mentioned in ARCHITECTURE.md or bench/README.md must
// have a committed baseline, and every inline-code span naming a repository
// path must resolve. Both files document the benchmark/gate surface, so a
// stale mention means the workflow text no longer matches the repo.
func TestDocsBenchReferencesResolve(t *testing.T) {
	for _, f := range []string{"ARCHITECTURE.md", "bench/README.md"} {
		blob, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		doc := string(blob)
		for _, name := range benchRef.FindAllString(doc, -1) {
			baseline := filepath.Join("bench", "baselines", name)
			if _, err := os.Stat(baseline); err != nil {
				t.Errorf("%s mentions %s but %s does not exist", f, name, baseline)
			}
		}
		for _, m := range codeSpan.FindAllStringSubmatch(doc, -1) {
			// Only the leading token is a path claim ("cmd/benchdiff
			// -baseline ..." names the command, not a file called that);
			// globs like `cmd/*` are patterns, not paths.
			token := strings.Fields(m[1])[0]
			if strings.ContainsAny(token, "*<>") {
				continue
			}
			isPath := false
			for _, p := range pathPrefixes {
				if strings.HasPrefix(token, p) {
					isPath = true
					break
				}
			}
			if !isPath {
				continue
			}
			if _, err := os.Stat(token); err != nil {
				t.Errorf("%s: inline code path %q does not resolve", f, token)
			}
		}
	}
}

var goFence = regexp.MustCompile("(?s)```go\n(.*?)```")

// TestDocsGoExamplesGofmtClean extracts every ```go fence from the docs and
// checks it formats cleanly — examples in prose must hold to the same gofmt
// bar as the code they describe.
func TestDocsGoExamplesGofmtClean(t *testing.T) {
	for _, f := range docFiles(t) {
		blob, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range goFence.FindAllStringSubmatch(string(blob), -1) {
			src := m[1]
			formatted, err := format.Source([]byte(src))
			if err != nil {
				t.Errorf("%s: go example %d does not parse: %v", f, i+1, err)
				continue
			}
			if string(formatted) != src {
				t.Errorf("%s: go example %d is not gofmt-clean; want:\n%s", f, i+1, formatted)
			}
		}
	}
}
